package deposet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predctl/internal/vclock"
)

// chainPair builds the two-process computation used throughout:
//
//	P0: ⊥ —s0—→ 1 —·—→ 2
//	P1: ⊥ —·—→ 1 —r0—→ 2
//
// with one message sent by P0's first event and received by P1's second.
func chainPair(t *testing.T) *Deposet {
	t.Helper()
	b := NewBuilder(2)
	_, h := b.Send(0)
	b.Step(0)
	b.Step(1)
	b.Recv(1, h)
	return b.MustBuild()
}

func TestBuilderShapes(t *testing.T) {
	d := chainPair(t)
	if d.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", d.NumProcs())
	}
	if d.Len(0) != 3 || d.Len(1) != 3 {
		t.Fatalf("lens = %d,%d", d.Len(0), d.Len(1))
	}
	if d.NumStates() != 6 {
		t.Fatalf("NumStates = %d", d.NumStates())
	}
	if len(d.Messages()) != 1 {
		t.Fatalf("messages = %d", len(d.Messages()))
	}
	m := d.Messages()[0]
	if m.FromP != 0 || m.SendEvent != 1 || m.ToP != 1 || m.RecvEvent != 2 {
		t.Fatalf("message = %+v", m)
	}
	if d.SendAt(0, 1) != 0 || d.RecvAt(1, 2) != 0 || d.SendAt(1, 2) != -1 {
		t.Fatal("event role lookup wrong")
	}
}

func TestHappenedBefore(t *testing.T) {
	d := chainPair(t)
	// The message relates state (0,0) to state (1,2): s ⇝ t.
	cases := []struct {
		s, t StateID
		want bool
	}{
		{StateID{0, 0}, StateID{0, 1}, true},  // local order
		{StateID{0, 1}, StateID{0, 0}, false}, // irreflexive/antisym
		{StateID{0, 0}, StateID{0, 0}, false}, // strict
		{StateID{0, 0}, StateID{1, 2}, true},  // via message
		{StateID{0, 0}, StateID{1, 1}, false}, // before the receive
		{StateID{0, 1}, StateID{1, 2}, false}, // send state itself not ⇝
		{StateID{1, 0}, StateID{0, 2}, false}, // no channel that way
		{StateID{1, 2}, StateID{0, 0}, false},
	}
	for _, c := range cases {
		if got := d.HB(c.s, c.t); got != c.want {
			t.Errorf("HB(%v,%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
	if !d.HBeq(StateID{0, 0}, StateID{0, 0}) {
		t.Error("HBeq not reflexive")
	}
	if !d.Concurrent(StateID{0, 1}, StateID{1, 1}) {
		t.Error("expected concurrency")
	}
	if d.Concurrent(StateID{0, 0}, StateID{0, 0}) {
		t.Error("state concurrent with itself")
	}
}

func TestClockConvention(t *testing.T) {
	d := chainPair(t)
	// State (1,2) knows P0 up to state 0 (the state before the send).
	v := d.Clock(StateID{1, 2})
	if v[0] != 0 || v[1] != 2 {
		t.Fatalf("Clock(1,2) = %v", v)
	}
	if v0 := d.Clock(StateID{1, 1}); v0[0] != vclock.None {
		t.Fatalf("Clock(1,1)[0] = %d, want None", v0[0])
	}
}

func TestConsistency(t *testing.T) {
	d := chainPair(t)
	// Orphan-message cut: P1 received but P0 "has not sent".
	if d.Consistent(Cut{0, 2}) {
		t.Error("orphan cut (0,2) reported consistent")
	}
	for _, g := range []Cut{{0, 0}, {1, 2}, {2, 2}, {1, 1}, {2, 0}} {
		if !d.Consistent(g) {
			t.Errorf("cut %v should be consistent", g)
		}
	}
	if !d.Consistent(d.BottomCut()) || !d.Consistent(d.TopCut()) {
		t.Error("⊥ or ⊤ inconsistent")
	}
}

func TestBottomTopAndRange(t *testing.T) {
	d := chainPair(t)
	if d.Bottom(1) != (StateID{1, 0}) || d.Top(0) != (StateID{0, 2}) {
		t.Error("Bottom/Top wrong")
	}
	if !d.IsBottom(StateID{0, 0}) || !d.IsTop(StateID{1, 2}) || d.IsTop(StateID{1, 1}) {
		t.Error("IsBottom/IsTop wrong")
	}
	if d.InRange(Cut{0, 3}) || d.InRange(Cut{0}) || !d.InRange(Cut{2, 1}) {
		t.Error("InRange wrong")
	}
}

func TestForEachConsistentCutGrid(t *testing.T) {
	// Two independent processes with 2 events each: full 3×3 grid.
	b := NewBuilder(2)
	b.Step(0)
	b.Step(0)
	b.Step(1)
	b.Step(1)
	d := b.MustBuild()
	if got := d.CountConsistentCuts(); got != 9 {
		t.Fatalf("grid lattice size = %d, want 9", got)
	}
}

func TestForEachConsistentCutMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		d := Random(r, DefaultGen(3, 9))
		want := 0
		var rec func(p int, g Cut)
		rec = func(p int, g Cut) {
			if p == d.NumProcs() {
				if d.Consistent(g) {
					want++
				}
				return
			}
			for k := 0; k < d.Len(p); k++ {
				g[p] = k
				rec(p+1, g)
			}
		}
		rec(0, d.BottomCut())
		seen := map[string]bool{}
		got := 0
		d.ForEachConsistentCut(func(g Cut) bool {
			if !d.Consistent(g) {
				t.Fatalf("enumerated inconsistent cut %v", g)
			}
			if seen[g.Key()] {
				t.Fatalf("cut %v enumerated twice", g)
			}
			seen[g.Key()] = true
			got++
			return true
		})
		if got != want {
			t.Fatalf("trial %d: enumerated %d cuts, brute force %d", trial, got, want)
		}
	}
}

func TestForEachConsistentCutEarlyStop(t *testing.T) {
	d := chainPair(t)
	calls := 0
	d.ForEachConsistentCut(func(Cut) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestSomeSequenceValid(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := Random(r, DefaultGen(1+r.Intn(4), r.Intn(20)))
		seq := d.SomeSequence()
		if err := d.ValidateSequence(seq); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestValidateSequenceRejects(t *testing.T) {
	d := chainPair(t)
	cases := []struct {
		name string
		seq  Sequence
	}{
		{"empty", nil},
		{"not bottom", Sequence{{1, 0}}},
		{"not top", Sequence{{0, 0}}},
		{"jump", Sequence{{0, 0}, {2, 0}, {2, 2}}},
		{"inconsistent", Sequence{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}}},
		{"backwards", Sequence{{0, 0}, {1, 0}, {0, 0}, {2, 2}}},
		{"out of range", Sequence{{0, 0}, {0, 5}, {2, 2}}},
	}
	for _, c := range cases {
		if err := d.ValidateSequence(c.seq); err == nil {
			t.Errorf("%s: sequence accepted", c.name)
		}
	}
	if err := d.ValidateSequence(d.SomeSequence()); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
}

func TestFalseIntervals(t *testing.T) {
	b := NewBuilder(1)
	for i := 0; i < 6; i++ {
		b.Step(0)
	}
	d := b.MustBuild() // 7 states
	truth := []bool{true, false, false, true, false, true, true}
	ivs := d.FalseIntervals(0, func(k int) bool { return truth[k] })
	want := []Interval{{0, 1, 2}, {0, 4, 4}}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", ivs, want)
		}
	}
	if !ivs[0].Contains(2) || ivs[0].Contains(3) {
		t.Error("Contains wrong")
	}
	if ivs[1].LoState() != (StateID{0, 4}) || ivs[1].HiState() != (StateID{0, 4}) {
		t.Error("endpoint states wrong")
	}
	if d.TrueEverywhere(0, func(k int) bool { return truth[k] }) {
		t.Error("TrueEverywhere false positive")
	}
	if !d.TrueEverywhere(0, func(int) bool { return true }) {
		t.Error("TrueEverywhere false negative")
	}
	allFalse := d.FalseIntervals(0, func(int) bool { return false })
	if len(allFalse) != 1 || allFalse[0] != (Interval{0, 0, 6}) {
		t.Errorf("all-false intervals = %v", allFalse)
	}
}

func TestVars(t *testing.T) {
	b := NewBuilder(2)
	b.Let(0, "x", 1) // at ⊥
	b.Step(0)
	b.Let(0, "x", 2)
	b.Step(0)
	d := b.MustBuild()
	if !d.HasVars() {
		t.Fatal("HasVars false")
	}
	for k, want := range []int{1, 2, 2} {
		got, ok := d.Var(StateID{0, k}, "x")
		if !ok || got != want {
			t.Errorf("x at (0,%d) = %d,%v; want %d", k, got, ok, want)
		}
	}
	if _, ok := d.Var(StateID{0, 0}, "y"); ok {
		t.Error("unset variable found")
	}
	if _, ok := d.Var(StateID{1, 0}, "x"); ok {
		t.Error("variable leaked across processes")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	_, h := b.Send(0)
	b.Recv(1, h)
	b.Recv(1, h) // double receive
	if _, err := b.Build(); err == nil {
		t.Error("double receive accepted")
	}

	b2 := NewBuilder(1)
	b2.Recv(0, MsgHandle(42))
	if _, err := b2.Build(); err == nil {
		t.Error("unknown message accepted")
	}
}

func TestBuilderPanicsOnBadProc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2).Step(5)
}

func TestNewBuilderPanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(0)
}

func TestTransfer(t *testing.T) {
	b := NewBuilder(2)
	s, r := b.Transfer(0, 1)
	d := b.MustBuild()
	if s != (StateID{0, 1}) || r != (StateID{1, 1}) {
		t.Fatalf("Transfer states = %v,%v", s, r)
	}
	if !d.HB(StateID{0, 0}, StateID{1, 1}) {
		t.Error("transfer did not create causality")
	}
}

func TestUnreceivedMessageAllowed(t *testing.T) {
	b := NewBuilder(2)
	b.Send(0)
	d := b.MustBuild()
	if d.Messages()[0].Received() {
		t.Error("dangling message marked received")
	}
	if d.HB(StateID{0, 0}, StateID{1, 0}) {
		t.Error("dangling message created causality")
	}
}

func TestFromRawRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := Random(r, DefaultGen(3, 12))
		d2, err := FromRaw(d.Raw())
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		for p := 0; p < d.NumProcs(); p++ {
			for k := 0; k < d.Len(p); k++ {
				s := StateID{p, k}
				if d.Clock(s).Compare(d2.Clock(s)) != vclock.Equal {
					t.Fatalf("clock mismatch at %v", s)
				}
			}
		}
	}
}

func TestFromRawRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		raw  Raw
	}{
		{"no procs", Raw{}},
		{"zero states", Raw{Lens: []int{0}}},
		{"bad sender", Raw{Lens: []int{2}, Msgs: []Message{{FromP: 5, SendEvent: 1, ToP: -1}}}},
		{"bad send event", Raw{Lens: []int{2}, Msgs: []Message{{FromP: 0, SendEvent: 9, ToP: -1}}}},
		{"bad receiver", Raw{Lens: []int{2, 2}, Msgs: []Message{{FromP: 0, SendEvent: 1, ToP: 7, RecvEvent: 1}}}},
		{"bad recv event", Raw{Lens: []int{2, 2}, Msgs: []Message{{FromP: 0, SendEvent: 1, ToP: 1, RecvEvent: 4}}}},
		{"D3 send+recv", Raw{Lens: []int{2, 2}, Msgs: []Message{
			{FromP: 0, SendEvent: 1, ToP: 1, RecvEvent: 1},
			{FromP: 1, SendEvent: 1, ToP: -1},
		}}},
		{"double send", Raw{Lens: []int{2}, Msgs: []Message{
			{FromP: 0, SendEvent: 1, ToP: -1},
			{FromP: 0, SendEvent: 1, ToP: -1},
		}}},
		{"vars wrong procs", Raw{Lens: []int{1}, Vars: make([][]map[string]int, 2)}},
		{"vars wrong len", Raw{Lens: []int{2}, Vars: [][]map[string]int{{nil}}}},
	}
	for _, c := range cases {
		if _, err := FromRaw(c.raw); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFromRawDetectsCycle(t *testing.T) {
	// P0 event1 receives m1 and event2 sends m0; P1 event1 receives m0 and
	// event2 sends m1. Each message is received "before" it is sent.
	raw := Raw{
		Lens: []int{3, 3},
		Msgs: []Message{
			{FromP: 0, SendEvent: 2, ToP: 1, RecvEvent: 1},
			{FromP: 1, SendEvent: 2, ToP: 0, RecvEvent: 1},
		},
	}
	if _, err := FromRaw(raw); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

// Property: HB coincides with strict vector-clock ordering on distinct
// states, and HB is transitive and irreflexive.
func TestHBPartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := Random(r, DefaultGen(1+r.Intn(4), r.Intn(25)))
		states := allStates(d)
		for trial := 0; trial < 40; trial++ {
			s := states[r.Intn(len(states))]
			u := states[r.Intn(len(states))]
			w := states[r.Intn(len(states))]
			if d.HB(s, s) {
				return false
			}
			if s != u && d.HB(s, u) != d.Clock(s).Less(d.Clock(u)) {
				return false
			}
			if d.HB(s, u) && d.HB(u, w) && !d.HB(s, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every step of SomeSequence is a consistent cut and the lattice
// BFS from ⊥ reaches ⊤.
func TestLatticeReachesTopProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := Random(r, DefaultGen(1+r.Intn(3), r.Intn(14)))
		reached := false
		top := d.TopCut()
		d.ForEachConsistentCut(func(g Cut) bool {
			if g.Equal(top) {
				reached = true
			}
			return true
		})
		return reached
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func allStates(d *Deposet) []StateID {
	var ss []StateID
	for p := 0; p < d.NumProcs(); p++ {
		for k := 0; k < d.Len(p); k++ {
			ss = append(ss, StateID{p, k})
		}
	}
	return ss
}

func TestCutHelpers(t *testing.T) {
	g := Cut{1, 2}
	h := g.Clone()
	h[0] = 9
	if g[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !g.Equal(Cut{1, 2}) || g.Equal(Cut{1}) || g.Equal(Cut{2, 2}) {
		t.Error("Equal wrong")
	}
	if !g.Leq(Cut{1, 3}) || g.Leq(Cut{0, 3}) {
		t.Error("Leq wrong")
	}
	if g.Key() != "1,2" {
		t.Errorf("Key = %q", g.Key())
	}
	if g.String() != "⟨1,2⟩" {
		t.Errorf("String = %q", g.String())
	}
	if (StateID{1, 2}).String() != "(1,2)" {
		t.Error("StateID.String wrong")
	}
	if (Interval{0, 1, 2}).String() != "P0[1..2]" {
		t.Error("Interval.String wrong")
	}
}
