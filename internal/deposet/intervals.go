package deposet

import "fmt"

// Interval is a maximal run of consecutive states of one process on which
// some local condition is false (a "false-interval" in the paper's
// terminology, written I with endpoints I.lo and I.hi). Lo and Hi are
// inclusive state indices; Lo == Hi is a single-state interval.
type Interval struct {
	P  int
	Lo int
	Hi int
}

func (iv Interval) String() string { return fmt.Sprintf("P%d[%d..%d]", iv.P, iv.Lo, iv.Hi) }

// LoState and HiState return the endpoint states I.lo and I.hi.
func (iv Interval) LoState() StateID { return StateID{iv.P, iv.Lo} }
func (iv Interval) HiState() StateID { return StateID{iv.P, iv.Hi} }

// Contains reports whether state index k lies in the interval.
func (iv Interval) Contains(k int) bool { return iv.Lo <= k && k <= iv.Hi }

// FalseIntervals returns the maximal false-intervals of process p with
// respect to the local condition holds (holds(k) is the truth of the local
// predicate at state (p,k)), in increasing order.
func (d *Deposet) FalseIntervals(p int, holds func(k int) bool) []Interval {
	var ivs []Interval
	m := d.lens[p]
	for k := 0; k < m; {
		if holds(k) {
			k++
			continue
		}
		lo := k
		for k < m && !holds(k) {
			k++
		}
		ivs = append(ivs, Interval{P: p, Lo: lo, Hi: k - 1})
	}
	return ivs
}

// TrueEverywhere reports whether holds is true at every state of p.
func (d *Deposet) TrueEverywhere(p int, holds func(k int) bool) bool {
	for k := 0; k < d.lens[p]; k++ {
		if !holds(k) {
			return false
		}
	}
	return true
}
