// Package deposet implements the computation model of Tarafdar & Garg,
// "Predicate Control for Active Debugging of Distributed Programs"
// (IPPS 1998): the decomposed partially-ordered set (deposet).
//
// A deposet records a distributed computation of n sequential processes.
// Process p executes a sequence of local states indexed 0..len(p)-1, where
// state 0 is the initial state ⊥p and the last state is the final state ⊤p.
// Event k (1-based) takes state k-1 to state k and is a local event, a
// message send, or a message receive (never both: constraint D3). Messages
// induce the remote-precedence relation: if the event after state s sends a
// message received by the event before state t, then s ⇝ t. Causal
// precedence → is the transitive closure of the local order and ⇝.
//
// The package computes vector clocks over states so that the → test is
// O(1), and provides consistent global states, the lattice of consistent
// cuts, global sequences, and false-interval extraction — everything the
// predicate-detection and predicate-control algorithms consume.
package deposet

import (
	"errors"
	"fmt"

	"predctl/internal/vclock"
)

// StateID identifies a local state: process P, state index K (0 = ⊥).
type StateID struct {
	P int
	K int
}

func (s StateID) String() string { return fmt.Sprintf("(%d,%d)", s.P, s.K) }

// Message records one application message. SendEvent and RecvEvent are
// 1-based event indices on the sending and receiving processes. A message
// that was sent but never received (still in flight when the computation
// ended) has ToP == -1 and RecvEvent == 0; it contributes no causality.
type Message struct {
	FromP     int
	SendEvent int
	ToP       int
	RecvEvent int
}

// Received reports whether the message has a receive event.
func (m Message) Received() bool { return m.ToP >= 0 }

func (m Message) String() string {
	if !m.Received() {
		return fmt.Sprintf("P%d.e%d→(in flight)", m.FromP, m.SendEvent)
	}
	return fmt.Sprintf("P%d.e%d→P%d.e%d", m.FromP, m.SendEvent, m.ToP, m.RecvEvent)
}

// View is the read-only causal structure shared by plain computations
// (*Deposet) and controlled computations (control.Extended): enough to
// run the detection algorithms on either.
type View interface {
	NumProcs() int
	Len(p int) int
	HB(s, t StateID) bool
}

// Deposet is an immutable distributed computation. Construct one with a
// Builder; the zero value is not usable.
type Deposet struct {
	lens []int     // number of states per process
	msgs []Message // all messages, in send order

	// clocks is the flat clock arena: the vector clock of state (p,k) is
	// the contiguous row clocks.Row(p, k), with clocks.Component(p, k, q)
	// the largest j with (q,j) →= (p,k), or vclock.None.
	clocks *vclock.Arena

	// sendMsg[p][e] / recvMsg[p][e] give the message index for event e of
	// process p (1-based; index 0 unused), or -1.
	sendMsg [][]int
	recvMsg [][]int

	// vars holds the interned, copy-on-write variable snapshots; nil when
	// the computation carries no variables.
	vars *varTable
}

// NumProcs returns the number of processes n.
func (d *Deposet) NumProcs() int { return len(d.lens) }

// Len returns the number of local states of process p (≥ 1).
func (d *Deposet) Len(p int) int { return d.lens[p] }

// NumStates returns the total number of local states across all processes.
func (d *Deposet) NumStates() int {
	t := 0
	for _, l := range d.lens {
		t += l
	}
	return t
}

// Messages returns the message list. The caller must not modify it.
func (d *Deposet) Messages() []Message { return d.msgs }

// SendAt returns the index into Messages of the message sent by event e of
// process p, or -1.
func (d *Deposet) SendAt(p, e int) int { return d.sendMsg[p][e] }

// RecvAt returns the index into Messages of the message received by event
// e of process p, or -1.
func (d *Deposet) RecvAt(p, e int) int { return d.recvMsg[p][e] }

// Clock returns the vector clock of state s, aliasing the clock arena.
// The caller must not modify it.
func (d *Deposet) Clock(s StateID) vclock.VC { return d.clocks.Row(s.P, s.K) }

// Bottom returns ⊥p, Top returns ⊤p.
func (d *Deposet) Bottom(p int) StateID { return StateID{p, 0} }
func (d *Deposet) Top(p int) StateID    { return StateID{p, d.lens[p] - 1} }

// IsBottom and IsTop report whether s is the initial or final state of its
// process.
func (d *Deposet) IsBottom(s StateID) bool { return s.K == 0 }
func (d *Deposet) IsTop(s StateID) bool    { return s.K == d.lens[s.P]-1 }

// HB reports whether s causally precedes t (s → t, strict): a single
// indexed load from the clock arena.
func (d *Deposet) HB(s, t StateID) bool {
	if s.P == t.P {
		return s.K < t.K
	}
	return d.clocks.Component(t.P, t.K, s.P) >= int32(s.K)
}

// HBeq reports s → t or s == t.
func (d *Deposet) HBeq(s, t StateID) bool { return s == t || d.HB(s, t) }

// Concurrent reports s ∥ t: neither s → t nor t → s and s ≠ t.
func (d *Deposet) Concurrent(s, t StateID) bool {
	return s != t && !d.HB(s, t) && !d.HB(t, s)
}

// Var returns the value of a state variable at s, if the computation
// carries variables and the variable is set there.
func (d *Deposet) Var(s StateID, name string) (int, bool) {
	if d.vars == nil {
		return 0, false
	}
	return d.vars.lookup(s.P, s.K, name)
}

// HasVars reports whether the computation carries state variables.
func (d *Deposet) HasVars() bool { return d.vars != nil }

// A Builder assembles a deposet event by event. All methods panic on
// out-of-range process indices; semantic errors (double receive, receive
// of an unsent message, causal cycles) are reported by Build.
type Builder struct {
	n       int
	lens    []int
	msgs    []Message
	sendMsg [][]int
	recvMsg [][]int
	lets    []map[int]map[string]int // per process: state index → var updates
	hasVars bool
	err     error
}

// NewBuilder starts a computation of n processes, each at its initial
// state ⊥ (one state, no events).
func NewBuilder(n int) *Builder {
	if n < 1 {
		panic("deposet: need at least one process")
	}
	b := &Builder{
		n:       n,
		lens:    make([]int, n),
		sendMsg: make([][]int, n),
		recvMsg: make([][]int, n),
		lets:    make([]map[int]map[string]int, n),
	}
	for p := 0; p < n; p++ {
		b.lens[p] = 1
		b.sendMsg[p] = []int{-1} // event index 0 unused
		b.recvMsg[p] = []int{-1}
		b.lets[p] = make(map[int]map[string]int)
	}
	return b
}

func (b *Builder) checkProc(p int) {
	if p < 0 || p >= b.n {
		panic(fmt.Sprintf("deposet: process %d out of range [0,%d)", p, b.n))
	}
}

func (b *Builder) addEvent(p, send, recv int) StateID {
	b.lens[p]++
	b.sendMsg[p] = append(b.sendMsg[p], send)
	b.recvMsg[p] = append(b.recvMsg[p], recv)
	return StateID{p, b.lens[p] - 1}
}

// Step appends a local event to process p and returns the new state.
func (b *Builder) Step(p int) StateID {
	b.checkProc(p)
	return b.addEvent(p, -1, -1)
}

// MsgHandle names a message created by Send, to be passed to Recv.
type MsgHandle int

// Send appends a send event to process p and returns a handle for the
// message, which must later be delivered with Recv (or left in flight).
func (b *Builder) Send(p int) (StateID, MsgHandle) {
	b.checkProc(p)
	id := len(b.msgs)
	b.msgs = append(b.msgs, Message{FromP: p, SendEvent: b.lens[p], ToP: -1})
	s := b.addEvent(p, id, -1)
	return s, MsgHandle(id)
}

// Recv appends a receive event for message h to process p and returns the
// new state.
func (b *Builder) Recv(p int, h MsgHandle) StateID {
	b.checkProc(p)
	id := int(h)
	switch {
	case id < 0 || id >= len(b.msgs):
		b.fail(fmt.Errorf("deposet: receive of unknown message %d", id))
	case b.msgs[id].Received():
		b.fail(fmt.Errorf("deposet: message %d received twice", id))
	case b.msgs[id].FromP == p:
		// Self-messages are legal in the model (s ⇝ t within a process)
		// but pointless; allow them.
	}
	s := b.addEvent(p, -1, id)
	if b.err == nil {
		b.msgs[id].ToP = p
		b.msgs[id].RecvEvent = b.lens[p] - 1
	}
	return s
}

// Transfer is Send on p immediately followed by Recv on q: a convenience
// for the common "message from p's current point to q's current point"
// shape used in examples and tests.
func (b *Builder) Transfer(p, q int) (send, recv StateID) {
	s, h := b.Send(p)
	t := b.Recv(q, h)
	return s, t
}

// Let sets variable name to value at the current top state of process p
// and all later states (until overridden). Call it immediately after the
// event that establishes the value; call before any event to set the value
// at ⊥p.
func (b *Builder) Let(p int, name string, value int) {
	b.checkProc(p)
	k := b.lens[p] - 1
	m := b.lets[p][k]
	if m == nil {
		m = make(map[string]int)
		b.lets[p][k] = m
	}
	m[name] = value
	b.hasVars = true
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the computation and computes vector clocks. The builder
// remains usable; Build may be called repeatedly as the computation grows.
// Computations of at least ParallelClockCutoff total states have their
// clocks constructed in process-sharded parallel passes across GOMAXPROCS
// workers (see BuildParallel for explicit control); smaller ones use the
// sequential fixpoint, which is faster at that scale.
func (b *Builder) Build() (*Deposet, error) {
	return b.build(clockWorkers(b.lens))
}

// build is Build with the clock-construction worker count resolved.
func (b *Builder) build(workers int) (*Deposet, error) {
	if b.err != nil {
		return nil, b.err
	}
	d := &Deposet{
		lens:    append([]int(nil), b.lens...),
		msgs:    append([]Message(nil), b.msgs...),
		sendMsg: make([][]int, b.n),
		recvMsg: make([][]int, b.n),
	}
	for p := 0; p < b.n; p++ {
		d.sendMsg[p] = append([]int(nil), b.sendMsg[p]...)
		d.recvMsg[p] = append([]int(nil), b.recvMsg[p]...)
	}
	var err error
	if workers > 1 {
		err = d.computeClocksParallel(workers)
	} else {
		err = d.computeClocks()
	}
	if err != nil {
		return nil, err
	}
	if b.hasVars {
		d.vars = varTableFromLets(b.lets, d.lens)
	}
	return d, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Deposet {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// ErrCyclic is returned when the message pattern makes causal precedence
// cyclic (the structure is not a valid deposet).
var ErrCyclic = errors.New("deposet: causal precedence is cyclic")

// computeClocks assigns the clock row of every state, processing events
// in a causality-respecting order; it fails with ErrCyclic if none
// exists. Rows are written in place in the arena — copy the predecessor
// row, merge the message clock — so the whole construction performs no
// per-event allocation. computeClocksParallel (parclock.go) is the
// sharded variant for large computations.
func (d *Deposet) computeClocks() error {
	n := len(d.lens)
	remaining := d.initClockRows()
	done := make([]int, n) // highest state index already clocked
	for remaining > 0 {
		progress := false
		for p := 0; p < n; p++ {
			for done[p] < d.lens[p]-1 {
				e := done[p] + 1 // next event
				mi := d.recvMsg[p][e]
				if mi >= 0 {
					// The message carries the clock of the state before
					// its send event: s = (FromP, SendEvent-1).
					if m := d.msgs[mi]; m.SendEvent-1 > done[m.FromP] {
						break // sender state not clocked yet
					}
				}
				row := d.clocks.Row(p, e)
				copy(row, d.clocks.Row(p, e-1))
				if mi >= 0 {
					m := d.msgs[mi]
					row.Merge(d.clocks.Row(m.FromP, m.SendEvent-1))
				}
				row[p] = int32(e)
				done[p] = e
				remaining--
				progress = true
			}
		}
		if !progress {
			return ErrCyclic
		}
	}
	return nil
}
