package deposet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// clocksEqual compares the full clock tables of two builds of the same
// computation.
func clocksEqual(a, b *Deposet) bool {
	if a.NumProcs() != b.NumProcs() {
		return false
	}
	for p := 0; p < a.NumProcs(); p++ {
		if a.Len(p) != b.Len(p) {
			return false
		}
		for k := 0; k < a.Len(p); k++ {
			va, vb := a.clocks.Row(p, k), b.clocks.Row(p, k)
			for q := range va {
				if va[q] != vb[q] {
					return false
				}
			}
		}
	}
	return true
}

// Property: the process-sharded parallel clock construction produces
// exactly the sequential clocks, for every worker count, on random
// message-heavy computations.
func TestBuildParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		procs := 1 + r.Intn(6)
		b := NewBuilder(procs)
		type flight struct {
			h  MsgHandle
			to int
		}
		var pending []flight
		for i := 0; i < 40+r.Intn(120); i++ {
			switch x := r.Float64(); {
			case x < 0.4 && len(pending) > 0:
				j := r.Intn(len(pending))
				f := pending[j]
				pending[j] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				b.Recv(f.to, f.h)
			case x < 0.7 && procs > 1:
				from := r.Intn(procs)
				to := r.Intn(procs)
				_, h := b.Send(from)
				pending = append(pending, flight{h, to}) // self-sends allowed
			default:
				b.Step(r.Intn(procs))
			}
		}
		seq, err := b.BuildParallel(1)
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 3, 4, 8} {
			p, err := b.BuildParallel(workers)
			if err != nil || !clocksEqual(seq, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Large computations cross the cutoff inside plain Build; make sure the
// auto-parallel path agrees with the forced-sequential one end to end
// (HB queries, not just raw clocks).
func TestBuildAutoParallelLargeTrace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := DefaultGen(8, 2*ParallelClockCutoff)
	b := RandomBuilder(r, cfg)
	seq, err := b.BuildParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !clocksEqual(seq, auto) {
		t.Fatal("auto Build clocks differ from sequential")
	}
	for trial := 0; trial < 500; trial++ {
		s := StateID{P: r.Intn(8), K: r.Intn(seq.Len(0))}
		u := StateID{P: r.Intn(8), K: r.Intn(seq.Len(0))}
		if s.K >= seq.Len(s.P) || u.K >= seq.Len(u.P) {
			continue
		}
		if seq.HB(s, u) != auto.HB(s, u) {
			t.Fatalf("HB(%v, %v) differs", s, u)
		}
	}
}

// A cyclic message pattern must be rejected by the parallel fixpoint
// just as by the sequential one: each receive precedes the other
// message's send, so no pass can make progress.
func TestComputeClocksParallelDetectsCycle(t *testing.T) {
	raw := Raw{
		Lens: []int{3, 3},
		Msgs: []Message{
			{FromP: 0, SendEvent: 2, ToP: 1, RecvEvent: 1},
			{FromP: 1, SendEvent: 2, ToP: 0, RecvEvent: 1},
		},
	}
	d, err := FromRaw(raw) // small: sequential path
	if err != ErrCyclic {
		t.Fatalf("FromRaw = %v, %v; want ErrCyclic", d, err)
	}
	// Drive the parallel fixpoint directly on the same structure.
	c := &Deposet{
		lens:    []int{3, 3},
		msgs:    raw.Msgs,
		sendMsg: [][]int{{-1, -1, 0}, {-1, -1, 1}},
		recvMsg: [][]int{{-1, 1, -1}, {-1, 0, -1}},
	}
	for _, workers := range []int{2, 4} {
		if err := c.computeClocksParallel(workers); err != ErrCyclic {
			t.Fatalf("workers=%d: err = %v, want ErrCyclic", workers, err)
		}
	}
}
