package deposet

import "fmt"

// Raw is the fully explicit representation of a deposet, used by the trace
// serialization layer and by tools that construct computations directly.
type Raw struct {
	Lens []int
	Msgs []Message
	// Vars[p][k] gives the variable snapshot at state (p,k); nil if the
	// computation carries no variables.
	Vars [][]map[string]int
}

// Raw returns the explicit representation of d. The variable maps are
// materialized from the interned copy-on-write snapshots (states that
// share a snapshot share a map object); treat the result as read-only.
func (d *Deposet) Raw() Raw {
	r := Raw{
		Lens: append([]int(nil), d.lens...),
		Msgs: append([]Message(nil), d.msgs...),
	}
	if d.vars != nil {
		r.Vars = d.vars.maps(d.lens)
	}
	return r
}

// FromRaw validates r and builds a deposet from it. Unlike the Builder,
// raw input can describe invalid structures (double roles per event —
// violating constraint D3 — dangling receives, or cyclic causality), all
// of which are rejected.
func FromRaw(r Raw) (*Deposet, error) {
	n := len(r.Lens)
	if n == 0 {
		return nil, fmt.Errorf("deposet: no processes")
	}
	for p, l := range r.Lens {
		if l < 1 {
			return nil, fmt.Errorf("deposet: process %d has %d states", p, l)
		}
	}
	d := &Deposet{
		lens:    append([]int(nil), r.Lens...),
		msgs:    append([]Message(nil), r.Msgs...),
		sendMsg: make([][]int, n),
		recvMsg: make([][]int, n),
	}
	for p := 0; p < n; p++ {
		d.sendMsg[p] = make([]int, r.Lens[p])
		d.recvMsg[p] = make([]int, r.Lens[p])
		for e := range d.sendMsg[p] {
			d.sendMsg[p][e] = -1
			d.recvMsg[p][e] = -1
		}
	}
	for i, m := range r.Msgs {
		if m.FromP < 0 || m.FromP >= n {
			return nil, fmt.Errorf("deposet: message %d: sender %d out of range", i, m.FromP)
		}
		if m.SendEvent < 1 || m.SendEvent >= r.Lens[m.FromP] {
			return nil, fmt.Errorf("deposet: message %d: send event %d out of range", i, m.SendEvent)
		}
		if d.sendMsg[m.FromP][m.SendEvent] != -1 || d.recvMsg[m.FromP][m.SendEvent] != -1 {
			return nil, fmt.Errorf("deposet: message %d: event (%d,%d) already has a role (D3)",
				i, m.FromP, m.SendEvent)
		}
		d.sendMsg[m.FromP][m.SendEvent] = i
		if !m.Received() {
			continue
		}
		if m.ToP >= n {
			return nil, fmt.Errorf("deposet: message %d: receiver %d out of range", i, m.ToP)
		}
		if m.RecvEvent < 1 || m.RecvEvent >= r.Lens[m.ToP] {
			return nil, fmt.Errorf("deposet: message %d: receive event %d out of range", i, m.RecvEvent)
		}
		if d.sendMsg[m.ToP][m.RecvEvent] != -1 || d.recvMsg[m.ToP][m.RecvEvent] != -1 {
			return nil, fmt.Errorf("deposet: message %d: event (%d,%d) already has a role (D3)",
				i, m.ToP, m.RecvEvent)
		}
		d.recvMsg[m.ToP][m.RecvEvent] = i
	}
	if workers := clockWorkers(d.lens); workers > 1 {
		if err := d.computeClocksParallel(workers); err != nil {
			return nil, err
		}
	} else if err := d.computeClocks(); err != nil {
		return nil, err
	}
	if r.Vars != nil {
		if len(r.Vars) != n {
			return nil, fmt.Errorf("deposet: vars for %d processes, want %d", len(r.Vars), n)
		}
		for p := 0; p < n; p++ {
			if r.Vars[p] != nil && len(r.Vars[p]) != r.Lens[p] {
				return nil, fmt.Errorf("deposet: process %d has %d var snapshots, want %d",
					p, len(r.Vars[p]), r.Lens[p])
			}
		}
		d.vars = varTableFromMaps(r.Vars, r.Lens)
	}
	return d, nil
}
