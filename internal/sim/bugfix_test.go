package sim

import (
	"math/rand"
	"strings"
	"testing"
)

// Regression for the k.failure data race: two processes panicking in
// the same run used to race a bare `failure == nil` check-then-set from
// their goroutines' recover handlers. Under -race this test locks in
// the mutex fix; in any mode it checks that exactly the first failure
// (in virtual-time order) survives and the run still tears down cleanly.
func TestTwoProcessesPanicSameRun(t *testing.T) {
	k := New(Config{Procs: 3})
	_, err := k.Run(
		func(p *Proc) {
			p.Work(1)
			panic("first boom")
		},
		func(p *Proc) {
			p.Work(2)
			panic("second boom")
		},
		func(p *Proc) { p.Work(5) },
	)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "first boom") {
		t.Fatalf("err = %v, want the first panic", err)
	}
	if strings.Contains(err.Error(), "second boom") {
		t.Fatalf("err = %v; second panic should have been dropped", err)
	}
}

// Both processes panic at the same virtual instant — the closest the
// kernel comes to concurrent recover handlers.
func TestSimultaneousPanics(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		k := New(Config{Procs: 2})
		_, err := k.Run(
			func(p *Proc) { panic("boom A") },
			func(p *Proc) { panic("boom B") },
		)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestUniformDelayInvertedBoundsPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "sim: UniformDelay bounds inverted") {
			t.Fatalf("panic = %v", r)
		}
	}()
	UniformDelay(9, 3)
}

func TestUniformDelayEqualBoundsIsConstant(t *testing.T) {
	d := UniformDelay(4, 4)
	r := rand.New(rand.NewSource(1))
	before := r.Int63()
	r = rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d(0, 1, r); got != 4 {
			t.Fatalf("delay = %d, want 4", got)
		}
	}
	// The degenerate delay must not consume randomness (ConstantDelay
	// behavior): the stream is exactly where a fresh one starts.
	if r.Int63() != before {
		t.Fatal("equal-bounds UniformDelay consumed randomness")
	}
}

func TestUniformDelayRange(t *testing.T) {
	d := UniformDelay(2, 5)
	r := rand.New(rand.NewSource(3))
	seen := map[Time]bool{}
	for i := 0; i < 200; i++ {
		v := d(0, 1, r)
		if v < 2 || v > 5 {
			t.Fatalf("delay %d outside [2,5]", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct delays, want 4", len(seen))
	}
}

// Regression for the weak per-process seed mixing: the old
// Seed ^ (i+1)*0x9e3779b9 scheme produced correlated streams for nearby
// run seeds (e.g. identical first draws for many (seed, proc) pairs).
// Distinct (seed, proc) pairs must now yield pairwise distinct first
// draws.
func TestProcSeedDecorrelated(t *testing.T) {
	seen := map[int64][2]int64{}
	for seed := int64(0); seed < 16; seed++ {
		for i := 0; i < 16; i++ {
			first := rand.New(rand.NewSource(procSeed(seed, i))).Int63()
			if prev, dup := seen[first]; dup {
				t.Fatalf("(seed=%d, proc=%d) and (seed=%d, proc=%d) share first draw %d",
					seed, i, prev[0], prev[1], first)
			}
			seen[first] = [2]int64{seed, int64(i)}
		}
	}
	// The old scheme demonstrably collided on this grid: proc i of seed 0
	// and proc i of seed 2*0x9e3779b9... more directly, seeds that differ
	// only in bits the multiply never reaches gave identical sources.
	// Spot-check the documented failure shape: old(s, i) == old(s', i)
	// for s ≠ s' never happens (XOR is injective in s), but
	// old(s, i) == old(s', j) for (s, i) ≠ (s', j) did. New mixing keeps
	// the whole grid distinct, which is what the map above asserts.
}

// The per-process streams of a single run must also disagree with each
// other from the first draw (the old mixing made procs of one run
// distinct but structured; keep a direct guard).
func TestProcStreamsDistinctWithinRun(t *testing.T) {
	k := New(Config{Procs: 8, Seed: 0})
	firsts := map[int64]bool{}
	for _, p := range k.procs {
		v := p.rng.Int63()
		if firsts[v] {
			t.Fatalf("two processes share first draw %d", v)
		}
		firsts[v] = true
	}
}
