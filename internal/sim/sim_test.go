package sim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"predctl/internal/deposet"
)

func TestPingPong(t *testing.T) {
	k := New(Config{Procs: 2, Delay: ConstantDelay(5), Trace: true})
	tr, err := k.Run(
		func(p *Proc) {
			p.Send(1, "ping")
			from, payload := p.Recv()
			if from != 1 || payload != "pong" {
				panic("bad reply")
			}
		},
		func(p *Proc) {
			from, payload := p.Recv()
			if from != 0 || payload != "ping" {
				panic("bad request")
			}
			p.Send(0, "pong")
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Messages != 2 {
		t.Errorf("messages = %d", tr.Stats.Messages)
	}
	if tr.Stats.End != 10 {
		t.Errorf("end time = %d, want 10 (two hops of delay 5)", tr.Stats.End)
	}
	// Trace shape: P0 has send+recv, P1 recv+send; causality through both.
	d := tr.D
	if d.Len(0) != 3 || d.Len(1) != 3 {
		t.Fatalf("trace lens = %d,%d", d.Len(0), d.Len(1))
	}
	if !d.HB(deposet.StateID{P: 0, K: 0}, deposet.StateID{P: 1, K: 1}) {
		t.Error("ping causality missing")
	}
	if !d.HB(deposet.StateID{P: 1, K: 1}, deposet.StateID{P: 0, K: 2}) {
		t.Error("pong causality missing")
	}
}

func TestWorkAdvancesTime(t *testing.T) {
	k := New(Config{Procs: 1})
	var mid, end Time
	_, err := k.Run(func(p *Proc) {
		p.Work(7)
		mid = p.Now()
		p.Work(3)
		end = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if mid != 7 || end != 10 {
		t.Errorf("times = %d, %d; want 7, 10", mid, end)
	}
}

func TestRecvOrderIsArrivalOrder(t *testing.T) {
	// P0 sends two messages with decreasing delays via per-pair delay:
	// the second overtakes the first.
	step := 0
	delay := func(from, to int, _ *rand.Rand) Time {
		step++
		if step == 1 {
			return 10
		}
		return 2
	}
	k := New(Config{Procs: 2, Delay: delay})
	var got []string
	_, err := k.Run(
		func(p *Proc) {
			p.Send(1, "slow")
			p.Send(1, "fast")
		},
		func(p *Proc) {
			for i := 0; i < 2; i++ {
				_, payload := p.Recv()
				got = append(got, payload.(string))
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "fast" || got[1] != "slow" {
		t.Errorf("order = %v", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New(Config{Procs: 2})
	_, err := k.Run(
		func(p *Proc) { p.Recv() },
		func(p *Proc) { p.Recv() },
	)
	var dl ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("blocked = %v", dl.Blocked)
	}
}

func TestPanicSurfaces(t *testing.T) {
	k := New(Config{Procs: 1})
	_, err := k.Run(func(p *Proc) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := New(Config{Procs: 1, MaxEvents: 50})
	_, err := k.Run(func(p *Proc) {
		for {
			p.Work(1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestTryRecv(t *testing.T) {
	k := New(Config{Procs: 2, Delay: ConstantDelay(4)})
	_, err := k.Run(
		func(p *Proc) {
			if _, _, ok := p.TryRecv(); ok {
				panic("message before any was sent")
			}
			p.Send(1, 42)
		},
		func(p *Proc) {
			if _, _, ok := p.TryRecv(); ok {
				panic("message before arrival")
			}
			p.Work(10)
			from, v, ok := p.TryRecv()
			if !ok || from != 0 || v.(int) != 42 {
				panic("message should have arrived during work")
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestVariablesTraced(t *testing.T) {
	k := New(Config{Procs: 1, Trace: true})
	tr, err := k.Run(func(p *Proc) {
		p.Init("cs", 0)
		p.Set("cs", 1)
		p.Work(5)
		p.Set("cs", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	d := tr.D
	if d.Len(0) != 3 {
		t.Fatalf("states = %d", d.Len(0))
	}
	want := []int{0, 1, 0}
	for kk, w := range want {
		v, ok := d.Var(deposet.StateID{P: 0, K: kk}, "cs")
		if !ok || v != w {
			t.Errorf("cs at state %d = %d,%v; want %d", kk, v, ok, w)
		}
	}
	// Work(5) happens between entering state 1 and state 2.
	if tr.Times[0][1] != 0 || tr.Times[0][2] != 5 {
		t.Errorf("times = %v", tr.Times[0])
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, string) {
		// Seed chosen so process 0's stream sends 3 messages to process 1
		// and 2 to process 2, matching the receive counts below.
		k := New(Config{Procs: 3, Delay: UniformDelay(1, 9), Seed: 9, Trace: true})
		tr, err := k.Run(
			func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.Send(p.Rand().Intn(2)+1, i)
					p.Work(Time(p.Rand().Intn(4)))
				}
			},
			func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Recv()
				}
			},
			func(p *Proc) {
				for i := 0; i < 2; i++ {
					p.Recv()
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		raw := tr.D.Raw()
		key := ""
		for _, m := range raw.Msgs {
			key += m.String()
		}
		return tr.Stats, key
	}
	s1, k1 := run()
	s2, k2 := run()
	if s1 != s2 || k1 != k2 {
		t.Fatalf("nondeterministic: %+v/%q vs %+v/%q", s1, k1, s2, k2)
	}
}

func TestSendToUnknownPanics(t *testing.T) {
	k := New(Config{Procs: 1})
	_, err := k.Run(func(p *Proc) { p.Send(3, nil) })
	if err == nil || !strings.Contains(err.Error(), "unknown process") {
		t.Fatalf("err = %v", err)
	}
}

func TestAccessors(t *testing.T) {
	k := New(Config{Procs: 2})
	_, err := k.Run(
		func(p *Proc) {
			if p.ID() != 0 || p.N() != 2 || p.Now() != 0 {
				panic("accessors wrong")
			}
		},
		func(p *Proc) {},
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBodyCountMismatch(t *testing.T) {
	k := New(Config{Procs: 2})
	if _, err := k.Run(func(p *Proc) {}); err == nil {
		t.Fatal("mismatched body count accepted")
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	k := New(Config{Procs: 1})
	if _, err := k.Run(func(p *Proc) { p.Work(-1) }); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestNewPanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Procs: 0})
}

// Property: random workloads produce valid deposets whose message count
// matches the statistics, and per-state times are monotone per process.
func TestRandomWorkloadTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%3)
		k := New(Config{Procs: n, Delay: UniformDelay(1, 5), Seed: seed, Trace: true})
		bodies := make([]func(*Proc), n)
		for i := range bodies {
			bodies[i] = func(p *Proc) {
				r := p.Rand()
				for step := 0; step < 12; step++ {
					switch r.Intn(4) {
					case 0:
						to := r.Intn(p.N() - 1)
						if to >= p.ID() {
							to++
						}
						p.Send(to, step)
					case 1:
						if _, _, ok := p.TryRecv(); !ok {
							p.Work(1)
						}
					case 2:
						p.Work(Time(r.Intn(3)))
					default:
						p.Set("x", step)
					}
				}
			}
		}
		tr, err := k.Run(bodies...)
		if err != nil {
			return false
		}
		if len(tr.D.Messages()) != tr.Stats.Messages {
			return false
		}
		for p := 0; p < n; p++ {
			if len(tr.Times[p]) != tr.D.Len(p) {
				return false
			}
			for kk := 1; kk < len(tr.Times[p]); kk++ {
				if tr.Times[p][kk] < tr.Times[p][kk-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
