// Package sim is a deterministic discrete-event simulator for
// asynchronous message-passing systems: the experimental substrate on
// which the on-line control strategies and the mutual-exclusion
// baselines run, standing in for the paper's (abstract) testbed.
//
// Processes are ordinary Go functions running in goroutines, written in
// direct style against a blocking API (Send/Recv/Work/Set); goroutines
// and channels map one-to-one onto the paper's process/message model.
// The kernel multiplexes them onto a virtual clock: exactly one process
// runs at a time, events are ordered by (time, sequence), message delays
// come from a seeded configuration, and identical configurations replay
// identical executions. Every run can be traced into a deposet, closing
// the loop with the off-line analyses.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"

	"predctl/internal/deposet"
	"predctl/internal/obs"
)

// Time is virtual time, in abstract units.
type Time int64

// DelayFn computes the in-flight delay of a message. It must be
// deterministic given the rng.
type DelayFn func(from, to int, r *rand.Rand) Time

// ConstantDelay returns a DelayFn with a fixed delay T.
func ConstantDelay(t Time) DelayFn {
	return func(_, _ int, _ *rand.Rand) Time { return t }
}

// UniformDelay returns a DelayFn uniform over [lo, hi]. Bounds are
// validated up front: inverted bounds (hi < lo) panic immediately with a
// clear message instead of surfacing later as an opaque rand.Int63n
// failure on the first send, and hi == lo degenerates cleanly to
// ConstantDelay(lo) without consuming randomness.
func UniformDelay(lo, hi Time) DelayFn {
	if hi < lo {
		panic(fmt.Sprintf("sim: UniformDelay bounds inverted: lo=%d > hi=%d", lo, hi))
	}
	if hi == lo {
		return ConstantDelay(lo)
	}
	return func(_, _ int, r *rand.Rand) Time { return lo + Time(r.Int63n(int64(hi-lo+1))) }
}

// Config parameterizes a run.
type Config struct {
	Procs int
	Delay DelayFn // nil means constant 1
	Seed  int64
	Trace bool // record the computation as a deposet
	// FIFO forces per-channel FIFO delivery: messages between one ordered
	// pair of processes arrive in send order even when the delay function
	// says otherwise (required by, e.g., the Chandy–Lamport snapshot
	// algorithm). Messages from different senders still interleave freely.
	FIFO bool
	// MaxEvents caps kernel events as a runaway guard; 0 means 10^7.
	MaxEvents int
	// Journal, when non-nil, receives a structured observability event
	// for every send, receive, block/unblock, work step and variable
	// assignment (virtual time, process id, operands); see internal/obs
	// for the exporters. nil (the default) records nothing and adds no
	// allocations to the kernel paths.
	Journal *obs.Journal
}

// Stats summarizes a run.
type Stats struct {
	Messages int  // messages sent
	Events   int  // kernel events processed
	End      Time // virtual time when the last process finished
}

// Trace is the recorded computation of a run.
type Trace struct {
	D     *deposet.Deposet
	Times [][]Time // Times[p][k]: virtual time state (p,k) was entered
	Stats Stats
}

// ErrDeadlock is reported when no process can make progress.
type ErrDeadlock struct{ Blocked []int }

func (e ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock; processes %v blocked on receive", e.Blocked)
}

type procStatus int

const (
	ready procStatus = iota
	running
	blockedRecv
	done
)

type message struct {
	from    int
	payload any
	arrival Time
	seq     int
	handle  deposet.MsgHandle // trace handle
}

// event is a kernel heap entry: either a process wake-up or a message
// delivery.
type event struct {
	at   Time
	seq  int
	proc int      // wake this process, or deliver to it
	msg  *message // nil for wake-ups
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Kernel drives one simulation run.
type Kernel struct {
	cfg       Config
	rng       *rand.Rand
	events    eventHeap
	seq       int
	procs     []*Proc
	stats     Stats
	builder   *deposet.Builder
	times     [][]Time
	yields    chan int // proc id announcing it yielded (or finished)
	failMu    sync.Mutex
	failure   error // first panic captured from a process; guarded by failMu
	cancelled bool  // tear-down: blocked processes unwind via cancelPanic
	lastArr   map[[2]int]Time
}

// setFailure records the first process failure; later ones are dropped.
// Panics are recovered on process goroutines, so two processes failing
// in the same run write concurrently — the mutex keeps the
// check-then-set atomic (a bare failure == nil test would race).
func (k *Kernel) setFailure(err error) {
	k.failMu.Lock()
	if k.failure == nil {
		k.failure = err
	}
	k.failMu.Unlock()
}

// takeFailure reads the recorded failure under the lock.
func (k *Kernel) takeFailure() error {
	k.failMu.Lock()
	defer k.failMu.Unlock()
	return k.failure
}

// cancelPanic unwinds a process goroutine that is still blocked when the
// run ends (deadlock tear-down), so runs never leak goroutines.
type cancelPanic struct{}

// Proc is the handle a simulated process uses to interact with the world.
type Proc struct {
	k      *Kernel
	id     int
	now    Time
	status procStatus
	avail  []*message // delivered, undelivered to the app yet (FIFO)
	resume chan Time
	rng    *rand.Rand
	reason string // what the process is blocked on, for diagnostics
	daemon bool
}

// Daemon marks the process as a background service: the run completes
// when every non-daemon process has finished, and still-blocked daemons
// are then unwound instead of being reported as deadlocked.
func (p *Proc) Daemon() { p.daemon = true }

// New creates a kernel for cfg.
func New(cfg Config) *Kernel {
	if cfg.Procs < 1 {
		panic("sim: need at least one process")
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay(1)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1e7
	}
	k := &Kernel{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		yields: make(chan int),
	}
	if cfg.Trace {
		k.builder = deposet.NewBuilder(cfg.Procs)
		k.times = make([][]Time, cfg.Procs)
		for p := range k.times {
			k.times[p] = []Time{0}
		}
	}
	for i := 0; i < cfg.Procs; i++ {
		k.procs = append(k.procs, &Proc{
			k:      k,
			id:     i,
			resume: make(chan Time),
			rng:    rand.New(rand.NewSource(procSeed(cfg.Seed, i))),
		})
	}
	return k
}

// procSeed derives process i's RNG seed from the run seed by a
// splitmix64 step over (Seed, i). The previous scheme — Seed XOR a
// multiple of a 32-bit constant — barely mixed: nearby run seeds moved
// only low bits, so seeds s and s^1 gave several processes correlated
// (sometimes identical) streams. Splitmix64's finalizer avalanches every
// input bit across the whole output, so distinct (seed, proc) pairs get
// decorrelated streams.
func procSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15 // golden-ratio increment
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes the process bodies to completion and returns the trace
// (nil unless Config.Trace) and statistics. It fails on deadlock, on a
// process panic, or when MaxEvents is exceeded.
func (k *Kernel) Run(bodies ...func(*Proc)) (*Trace, error) {
	if len(bodies) != k.cfg.Procs {
		return nil, fmt.Errorf("sim: %d process bodies for %d processes", len(bodies), k.cfg.Procs)
	}
	for i, body := range bodies {
		p := k.procs[i]
		body := body
		heap.Push(&k.events, event{at: 0, seq: k.nextSeq(), proc: i})
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isCancel := r.(cancelPanic); !isCancel {
						k.setFailure(fmt.Errorf("sim: process %d panicked: %v\n%s", p.id, r, debug.Stack()))
					}
				}
				p.status = done
				k.yields <- p.id
			}()
			<-p.resume // wait for the kernel's first wake-up
			p.status = running
			body(p)
		}()
	}
	for k.events.Len() > 0 {
		if k.stats.Events >= k.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events (runaway?)", k.cfg.MaxEvents)
		}
		ev := heap.Pop(&k.events).(event)
		k.stats.Events++
		p := k.procs[ev.proc]
		if ev.msg != nil { // delivery
			if p.status == done {
				continue // receiver finished; message stays in flight
			}
			p.avail = append(p.avail, ev.msg)
			if p.status == blockedRecv {
				k.wake(p, ev.at)
			}
			continue
		}
		if p.status == done {
			continue
		}
		k.wake(p, ev.at)
	}
	var blocked []int
	k.cancelled = true
	for _, p := range k.procs {
		if p.status != done {
			if !p.daemon {
				blocked = append(blocked, p.id)
			}
			p.resume <- p.now // unwind via cancelPanic in yield
			<-k.yields
		}
	}
	if err := k.takeFailure(); err != nil {
		return nil, err
	}
	if len(blocked) > 0 {
		return nil, ErrDeadlock{Blocked: blocked}
	}
	if k.builder == nil {
		return &Trace{Stats: k.stats}, nil
	}
	d, err := k.builder.Build()
	if err != nil {
		return nil, fmt.Errorf("sim: trace invalid: %w", err)
	}
	return &Trace{D: d, Times: k.times, Stats: k.stats}, nil
}

// wake resumes p at time t and blocks until it yields again.
func (k *Kernel) wake(p *Proc, t Time) {
	if t > p.now {
		p.now = t
	}
	if p.now > k.stats.End {
		k.stats.End = p.now
	}
	p.status = running
	p.resume <- p.now
	<-k.yields
	if p.now > k.stats.End {
		k.stats.End = p.now
	}
}

func (k *Kernel) nextSeq() int { k.seq++; return k.seq }

// yield suspends the calling process until the kernel wakes it.
func (p *Proc) yield(status procStatus, reason string) {
	p.status = status
	p.reason = reason
	p.k.yields <- p.id
	p.now = <-p.resume
	if p.k.cancelled {
		panic(cancelPanic{})
	}
	p.status = running
}

// ID returns the process index; N the number of processes.
func (p *Proc) ID() int { return p.id }
func (p *Proc) N() int  { return p.k.cfg.Procs }

// Now returns the process's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Rand is a per-process deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Journal returns the run's observability journal (nil when tracing is
// off). Protocol layers stacked on the simulator (internal/online,
// internal/monitor) use it to record protocol-level events alongside
// the kernel's; *obs.Journal methods are nil-safe, so the result can be
// used unconditionally.
func (p *Proc) Journal() *obs.Journal { return p.k.cfg.Journal }

// Send dispatches payload to process `to`; it does not block. The
// message arrives after the configured delay.
func (p *Proc) Send(to int, payload any) {
	if to < 0 || to >= p.k.cfg.Procs {
		panic(fmt.Sprintf("sim: send to unknown process %d", to))
	}
	m := &message{
		from:    p.id,
		payload: payload,
		arrival: p.now + p.k.cfg.Delay(p.id, to, p.k.rng),
		seq:     p.k.nextSeq(),
	}
	if p.k.cfg.FIFO {
		if p.k.lastArr == nil {
			p.k.lastArr = map[[2]int]Time{}
		}
		ch := [2]int{p.id, to}
		if last, ok := p.k.lastArr[ch]; ok && last > m.arrival {
			m.arrival = last // hold back: per-channel FIFO (seq breaks the tie)
		}
		p.k.lastArr[ch] = m.arrival
	}
	if b := p.k.builder; b != nil {
		_, h := b.Send(p.id)
		m.handle = h
		p.k.times[p.id] = append(p.k.times[p.id], p.now)
	}
	if j := p.k.cfg.Journal; j != nil {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindSend, A: int64(to), B: int64(m.seq)})
	}
	p.k.stats.Messages++
	heap.Push(&p.k.events, event{at: m.arrival, seq: m.seq, proc: to, msg: m})
}

// Recv blocks until a message is available and returns its sender and
// payload, in arrival order.
func (p *Proc) Recv() (from int, payload any) {
	j := p.k.cfg.Journal
	blocked := false
	for len(p.avail) == 0 {
		if j != nil && !blocked {
			blocked = true
			j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindBlock, Name: "recv"})
		}
		p.yield(blockedRecv, "recv")
	}
	if blocked {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindUnblock})
	}
	m := p.avail[0]
	p.avail = p.avail[1:]
	if b := p.k.builder; b != nil {
		b.Recv(p.id, m.handle)
		p.k.times[p.id] = append(p.k.times[p.id], p.now)
	}
	if j != nil {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindRecv, A: int64(m.from), B: int64(m.seq)})
	}
	return m.from, m.payload
}

// TryRecv returns a message if one has already arrived.
func (p *Proc) TryRecv() (from int, payload any, ok bool) {
	if len(p.avail) == 0 {
		return 0, nil, false
	}
	from, payload = p.Recv()
	return from, payload, true
}

// Work advances the process's local clock by d, modeling computation.
func (p *Proc) Work(d Time) {
	if d < 0 {
		panic("sim: negative work duration")
	}
	if j := p.k.cfg.Journal; j != nil {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindWork, B: int64(d)})
	}
	heap.Push(&p.k.events, event{at: p.now + d, seq: p.k.nextSeq(), proc: p.id})
	p.yield(ready, "work")
}

// Tick records a local event in the trace without changing variables
// (a no-op without tracing).
func (p *Proc) Tick() {
	if b := p.k.builder; b != nil {
		b.Step(p.id)
		p.k.times[p.id] = append(p.k.times[p.id], p.now)
	}
}

// Let assigns a state variable at the process's *current* traced state
// without recording an event; use Set for the common "event that changes
// a variable" case. Assignments are journalled as predicate-flip events
// (KindSet) even when deposet tracing is off.
func (p *Proc) Let(name string, v int) {
	if b := p.k.builder; b != nil {
		b.Let(p.id, name, v)
	}
	if j := p.k.cfg.Journal; j != nil {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindSet, Name: name, A: int64(v)})
	}
}

// Set records a state-variable assignment as a local event in the trace
// (and is a no-op without tracing).
func (p *Proc) Set(name string, v int) {
	p.Tick()
	p.Let(name, v)
}

// Init sets a variable's value at the initial state ⊥; call before any
// other operation.
func (p *Proc) Init(name string, v int) {
	if b := p.k.builder; b != nil {
		b.Let(p.id, name, v)
	}
	if j := p.k.cfg.Journal; j != nil {
		j.Append(obs.Event{At: int64(p.now), Proc: p.id, Kind: obs.KindSet, Name: name, A: int64(v)})
	}
}

// StateIndex returns the index of the process's current traced state
// (0 before any event). It requires tracing; without it, -1 is returned.
func (p *Proc) StateIndex() int {
	if p.k.times == nil {
		return -1
	}
	return len(p.k.times[p.id]) - 1
}
