package wire

import (
	"reflect"
	"testing"
)

// FuzzDecodeBody holds the codec to its contract: arbitrary bytes never
// panic the decoder, and any body it accepts re-encodes to a body that
// decodes to the same message (value round-trip — byte identity is not
// required, since varints admit non-minimal encodings on input).
func FuzzDecodeBody(f *testing.F) {
	for i, m := range sampleMsgs() {
		f.Add(Marshal(uint64(i), m)[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, kindTrace, 0, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		seq, m, err := DecodeBody(body)
		if err != nil {
			return
		}
		re := AppendBody(nil, seq, m)
		seq2, m2, err := DecodeBody(re)
		if err != nil {
			t.Fatalf("accepted body failed to re-decode: %v\nbody: %x\nre:   %x", err, body, re)
		}
		if seq2 != seq || !reflect.DeepEqual(m2, m) {
			t.Fatalf("round trip drifted:\n first %d %#v\nsecond %d %#v", seq, m, seq2, m2)
		}
	})
}
