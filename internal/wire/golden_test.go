package wire

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// golden_test.go is the v1 wire-format compatibility corpus (ROADMAP
// "Wire-format evolution"): one committed binary fixture per frame
// kind, each a complete frame as v1 puts it on a TCP stream. The test
// holds the current codec to byte-for-byte compatibility in both
// directions — every fixture must decode to exactly the recorded
// message, and re-encoding that message must reproduce the fixture
// bit-identically. A future v2 codec keeps this test (and the fixtures)
// unchanged to prove it still reads v1 captures; only deliberate,
// version-bumped format changes may regenerate the corpus with
// `go test ./internal/wire -run TestGoldenFrames -update-golden`.

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden frame fixtures from the current encoder")

// goldenFrames enumerates one representative frame per kind, with
// non-trivial field values (negative varints, the vclock.None sentinel,
// multi-group op batches) so the fixtures pin the interesting encoder
// behavior, not just the happy path.
var goldenFrames = []struct {
	name string
	seq  uint64
	msg  Msg
}{
	{"01_hello", 0, Hello{From: -1, N: 64}},
	{"02_linkack", 0, LinkAck{Cum: 300}},
	{"03_ctl", 7, Ctl{Kind: CtlConfirm, From: 2, To: 61, Gen: 9, TraceID: 66<<40 | 41, VC: []int32{3, -1, 0, 12}}},
	{"04_app", 8, App{From: 1, To: 2, TraceID: 99, VC: []int32{5, -1}, Payload: []byte("payload")}},
	{"05_candidate", 9, Candidate{Proc: 3, LoIdx: 4, HiIdx: 9, Lo: []int32{1, 2}, Hi: []int32{4, 5}}},
	{"06_journalevent", 10, JournalEvent{At: 123456789, Proc: 67, Kind: 7, Name: "scapegoat.acquire", A: 3, B: 2, C: 5, VC: []int32{7, 0, -1}}},
	{"07_trace", 11, Trace{Ops: []TraceOp{
		{Op: TraceInit, Proc: 0, Name: "cs", Value: 0},
		{Op: TraceSend, Proc: 64, MsgID: 64<<40 | 1},
		{Op: TraceRecv, Proc: 0, MsgID: 64<<40 | 1},
		{Op: TraceSet, Proc: 0, Name: "cs", Value: 1},
	}}},
	{"08_done", 12, Done{Proc: 5, Requests: 2, Handoffs: 1, CtlMessages: 6, Responses: []int64{0, 1500000}}},
	{"09_shutdown", 0, Shutdown{}},
	{"10_journalbatch", 13, JournalBatch{Events: []JournalEvent{
		{At: 5, Proc: 66, Kind: 7, Name: "ctl.req", A: 3, C: 4, VC: []int32{1, 1, 0}},
		{At: 9, Proc: 2, Kind: 6, Name: "cs", A: 1},
	}}},
	{"11_traceopbatch", 14, TraceOpBatch{Ops: []TraceOp{
		{Op: TraceSend, Proc: 66, MsgID: 66<<40 | 3},
		{Op: TraceRecv, Proc: 66, MsgID: 66<<40 | 2},
		{Op: TraceSet, Proc: 2, Name: "cs", Value: 0},
	}}},
	{"12_candidatebatch", 15, CandidateBatch{Cands: []Candidate{
		{Proc: 2, LoIdx: 4, HiIdx: 6, Lo: []int32{2, 1, 0}, Hi: []int32{4, 2, 1}},
		{Proc: 0, LoIdx: 1, HiIdx: 1, Lo: []int32{1, 0, 0}, Hi: []int32{1, 0, 0}},
	}}},
	{"13_resume", 16, Resume{From: 5, N: 64, Epoch: 3}},
	{"14_resumeack", 0, ResumeAck{Cum: 1 << 33, Epoch: 7}},
	{"15_restart", 0, Restart{Epoch: 4}},
	{"16_epochmark", 17, EpochMark{Epoch: 4}},
	{"17_commit", 0, Commit{}},
	{"18_metricssnapshot", 18, MetricsSnapshot{Proc: 3, Epoch: 2, AtNs: 1_500_000_000, Points: []MetricPoint{
		{Kind: 1, Key: `predctl_requests_total`, Value: 42},
		{Kind: 1, Key: `predctl_wire_frames_total{stream="coord"}`, Value: 317},
		{Kind: 2, Key: `predctl_epoch`, Value: 2},
		{Kind: 5, Key: `predctl_response_ns`, Value: -1},
	}}},
	{"19_detection", 19, Detection{Epoch: 1, Node: 2, AtNs: 7_250_000, Cut: []int64{3, -1, 4, 0, 2, 1}}},
	{"20_reexec", 0, ReExec{Epoch: 2, Edges: 5}},
	{"21_relayhello", 0, RelayHello{Relay: 2, Relays: 8, N: 256, Resume: true, Epoch: 3}},
	{"22_relaybatch", 20, RelayBatch{Frames: []RelayFrame{
		{Origin: 66, Body: AppendBody(nil, 9, TraceOpBatch{Ops: []TraceOp{
			{Op: TraceSend, Proc: 66, MsgID: 66<<40 | 7},
			{Op: TraceRecv, Proc: 66, MsgID: 66<<40 | 5},
		}})},
		{Origin: 2, Body: AppendBody(nil, 4, EpochMark{Epoch: 3})},
	}}},
	{"23_segmentrecord", 21, SegmentRecord{Origin: 66, Epoch: 3,
		Body: AppendBody(nil, 9, JournalEvent{At: 77, Proc: 66, Kind: 6, Name: "cs", A: 1, VC: []int32{2, -1}})}},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".bin")
}

func TestGoldenFrames(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			path := goldenPath(g.name)
			if *updateGolden {
				if err := os.WriteFile(path, Marshal(g.seq, g.msg), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden after a deliberate format change): %v", err)
			}
			seq, m, err := ReadFrame(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("v1 fixture no longer decodes: %v", err)
			}
			if seq != g.seq || !reflect.DeepEqual(m, g.msg) {
				t.Fatalf("v1 fixture decoded to\n %d %#v\nwant\n %d %#v", seq, m, g.seq, g.msg)
			}
			if got := Marshal(g.seq, g.msg); !bytes.Equal(got, want) {
				t.Fatalf("re-encoding drifted from the committed v1 bytes\n got %x\nwant %x", got, want)
			}
		})
	}
	// The corpus must stay exhaustive: a new frame kind without a
	// fixture would silently escape the compatibility guarantee.
	kinds := map[byte]bool{}
	for _, g := range goldenFrames {
		kinds[g.msg.wireKind()] = true
	}
	for k := kindHello; k <= kindSegmentRecord; k++ {
		if !kinds[k] {
			t.Errorf("frame kind %d has no golden fixture", k)
		}
	}
	if len(kinds) != len(goldenFrames) {
		t.Errorf("%d fixtures cover only %d kinds; one fixture per kind", len(goldenFrames), len(kinds))
	}
	_ = fmt.Sprint() // keep fmt imported if the table shrinks
}
