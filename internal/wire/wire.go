// Package wire is the network runtime's binary codec: a compact,
// versioned, length-prefixed encoding of every message the predicate
// control protocol puts on a real link. It is the contract between node
// daemons (internal/node) and between a node and the trace-capturing
// coordinator, kept deliberately free of both net and sim dependencies
// so it can be fuzzed and round-trip-tested in isolation.
//
// Stream framing:
//
//	[u32 big-endian body length][body]
//	body = [u8 version][u8 kind][uvarint seq][kind-specific payload]
//
// seq is the reliable-link sequence number assigned by the sender
// (0 for unsequenced link-control frames such as Hello and LinkAck);
// the link layer in internal/node uses it for at-least-once delivery
// with receiver-side deduplication, which is what makes the
// fault-injection shim's drops and duplicates recoverable.
//
// Integers are varint-encoded (zigzag for signed fields, so the
// vclock.None = -1 sentinel costs one byte); strings and byte slices
// are length-prefixed. Decoding is strict: unknown versions or kinds,
// truncated payloads, oversized counts and trailing bytes are all
// errors, never panics — the fuzz target in fuzz_test.go holds the
// codec to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the protocol version this codec speaks. A node refuses
// frames from any other version: protocol evolution bumps it, and mixed
// clusters fail loudly at the handshake instead of misparsing.
const Version = 1

// MaxFrame bounds the body length accepted from a peer (1 MiB): a
// corrupt or hostile length prefix must not OOM the daemon.
const MaxFrame = 1 << 20

// maxVC bounds vector-clock and list lengths inside one frame.
const maxVC = 1 << 16

// Msg is one decoded protocol message. The set is closed (sealed by the
// unexported method): Hello, LinkAck, Ctl, App, Candidate, JournalEvent,
// Trace, Done, Shutdown, JournalBatch, TraceOpBatch, CandidateBatch,
// Resume, ResumeAck, Restart, EpochMark, Commit, MetricsSnapshot,
// Detection, ReExec, RelayHello, RelayBatch, SegmentRecord.
type Msg interface{ wireKind() byte }

// Frame kinds (the body's second byte).
const (
	kindHello byte = iota + 1
	kindLinkAck
	kindCtl
	kindApp
	kindCandidate
	kindJournalEvent
	kindTrace
	kindDone
	kindShutdown
	kindJournalBatch
	kindTraceOpBatch
	kindCandidateBatch
	kindResume
	kindResumeAck
	kindRestart
	kindEpochMark
	kindCommit
	kindMetricsSnapshot
	kindDetection
	kindReExec
	kindRelayHello
	kindRelayBatch
	kindSegmentRecord
)

// Exported kind aliases, for consumers that route raw frame bodies by
// PeekBody without decoding them (the relay's forwarding path). The
// wire values stay private to keep the encode/decode switch the single
// owner of the numbering.
const (
	KindHello           = kindHello
	KindLinkAck         = kindLinkAck
	KindCtl             = kindCtl
	KindApp             = kindApp
	KindCandidate       = kindCandidate
	KindJournalEvent    = kindJournalEvent
	KindTrace           = kindTrace
	KindDone            = kindDone
	KindShutdown        = kindShutdown
	KindJournalBatch    = kindJournalBatch
	KindTraceOpBatch    = kindTraceOpBatch
	KindCandidateBatch  = kindCandidateBatch
	KindResume          = kindResume
	KindResumeAck       = kindResumeAck
	KindRestart         = kindRestart
	KindEpochMark       = kindEpochMark
	KindCommit          = kindCommit
	KindMetricsSnapshot = kindMetricsSnapshot
	KindDetection       = kindDetection
	KindReExec          = kindReExec
	KindRelayHello      = kindRelayHello
	KindRelayBatch      = kindRelayBatch
	KindSegmentRecord   = kindSegmentRecord
)

// CtlKind is a controller-to-controller handoff message kind, mirroring
// online.MsgKind (req/ack/confirm/cancel) without importing it.
type CtlKind uint8

// The four handoff message kinds of the paper's Figure 3 strategy plus
// the broadcast completion round.
const (
	CtlReq CtlKind = iota
	CtlAck
	CtlConfirm
	CtlCancel
)

var ctlKindNames = [...]string{"req", "ack", "confirm", "cancel"}

func (k CtlKind) String() string {
	if int(k) < len(ctlKindNames) {
		return ctlKindNames[k]
	}
	return fmt.Sprintf("CtlKind(%d)", uint8(k))
}

// Hello opens every connection: it names the dialing node and the
// cluster size, so the accepting side can reject mismatched clusters
// and index its per-peer receive state.
type Hello struct {
	From int32 // dialing node id (coordinator uses -1)
	N    int32 // cluster size the dialer believes in
}

// LinkAck is the reliable link's cumulative acknowledgement: every
// sequenced frame with seq ≤ Cum from the acknowledged direction has
// been delivered. Unsequenced itself, idempotent, safe to lose.
type LinkAck struct {
	Cum uint64
}

// Ctl is a handoff protocol message between controllers (app-index
// space). Gen piggybacks the sender's anti-token generation so
// acquisitions are totally ordered for the chain invariant; TraceID
// identifies the message in the captured deposet trace; VC piggybacks
// the sender's node-level vector clock.
type Ctl struct {
	Kind    CtlKind
	From    int32
	To      int32
	Gen     uint64
	TraceID uint64
	VC      []int32
}

// App is an application-level message between controlled processes,
// with the piggybacked vector clock the monitor-style online detection
// needs and the TraceID that binds it into the captured deposet.
type App struct {
	From    int32
	To      int32
	TraceID uint64
	VC      []int32
	Payload []byte
}

// Candidate reports one maximal true-interval of a node's local
// predicate to the coordinator (the Garg–Waldecker candidate of
// internal/monitor, §4 of the paper): interval endpoints as vector
// clocks plus traced state indices.
type Candidate struct {
	Proc   int32
	LoIdx  int64
	HiIdx  int64
	Lo, Hi []int32
}

// JournalEvent forwards one obs.Event from a node to the coordinator,
// so a multi-process cluster still assembles a single journal for the
// invariant checkers.
type JournalEvent struct {
	At   int64
	Proc int32
	Kind uint8
	Name string
	A    int64
	B    int64
	C    int64
	VC   []int32
}

// TraceOp codes for TraceOp.Op.
const (
	TraceInit byte = iota + 1 // set Name := Value at the initial state ⊥
	TraceStep                 // local event
	TraceSend                 // send event of message MsgID
	TraceRecv                 // receive event of message MsgID
	TraceLet                  // set Name := Value at the current state
	TraceSet                  // local event that sets Name := Value
)

// TraceOp is one deposet-building operation of logical process Proc, in
// that process's event order. The coordinator replays ops through a
// deposet.Builder, matching TraceSend/TraceRecv pairs by MsgID, to
// capture the networked run as a trace that pctl replay and the offline
// analyses consume unchanged.
type TraceOp struct {
	Op    byte
	Proc  int32
	MsgID uint64
	Name  string
	Value int64
}

// Trace batches trace-capture operations from one node. It is the v1
// per-flush framing; streaming senders use TraceOpBatch, whose grouped
// encoding drops the per-op process tag, but Trace remains decodable
// forever so v1 captures stay readable.
type Trace struct {
	Ops []TraceOp
}

// JournalBatch carries many forwarded journal events in one frame — the
// batched replacement for a stream of JournalEvent frames, flushed by
// the node's capture batcher on a size-or-interval policy.
type JournalBatch struct {
	Events []JournalEvent
}

// TraceOpBatch carries trace-capture operations run-length grouped by
// logical process: consecutive ops of the same process share one group
// header, so the per-op process tag disappears from the wire. A node's
// capture buffer alternates long runs of app and controller ops, which
// is exactly the shape this encoding compresses. Decoding flattens the
// groups back into the op stream, so consumers see the same []TraceOp a
// Trace frame would carry.
type TraceOpBatch struct {
	Ops []TraceOp
}

// CandidateBatch carries many monitor candidate reports in one frame —
// like JournalBatch, flushed by the node's capture batcher. Candidates
// are consumed only when the run is assembled, so nothing is lost by
// deferring them to the next flush.
type CandidateBatch struct {
	Cands []Candidate
}

// Done tells the coordinator this node's application body finished,
// carrying the node's protocol tallies. The coordinator broadcasts
// Shutdown once every node reported Done.
type Done struct {
	Proc        int32
	Requests    uint64
	Handoffs    uint64
	CtlMessages uint64
	Responses   []int64 // per-request grant latency, nanoseconds
}

// Shutdown is the coordinator's stop signal to a node — and, echoed
// back with the node's epoch, the node's bye. Epoch tags which
// execution the signal belongs to: a Shutdown raced by a controlled
// re-execution restart is stale and must be ignored, not obeyed. It is
// an optional trailing field (omitted when zero) so epoch-0 frames
// stay byte-identical to the committed v1 fixtures.
type Shutdown struct {
	Epoch uint32
}

// Commit is the coordinator's final word: every node's bye for the
// final epoch is in, the run's capture is sealed, and no further
// restart can void it. Until a node sees Commit it stays resident
// after its bye — a crash elsewhere in the cluster can still trigger
// a controlled re-execution that needs this node back.
type Commit struct{}

// Resume is the session-resume handshake. It replaces Hello on any
// connection that continues an existing session rather than opening a
// fresh one: a node redialing the coordinator after a stream break or a
// healed partition, and every mesh link dial at epoch > 0 (so peers can
// tell a current-epoch stream from a stale one). Epoch is the sender's
// current re-execution epoch (§8 controlled re-execution: a crash
// anywhere restarts the run at epoch+1).
type Resume struct {
	From  int32
	N     int32
	Epoch uint32
}

// ResumeAck answers a Resume on the coordinator stream: Cum is the
// highest contiguous capture-stream sequence number the coordinator
// holds for the resuming node (the node retransmits everything after
// it), and Epoch is the cluster's current re-execution epoch, so a node
// that missed a Restart broadcast while disconnected catches up at the
// handshake.
type ResumeAck struct {
	Cum   uint64
	Epoch uint32
}

// Restart is the coordinator's controlled re-execution order: abort the
// current execution, reset protocol and capture state, and re-run the
// workload at Epoch. Broadcast when a crashed node rejoins; the paper's
// §8 recovery path — the debugged computation is re-executed under
// control rather than patched around the crash.
type Restart struct {
	Epoch uint32
}

// EpochMark is a node's in-stream epoch boundary on the coordinator
// capture stream: every capture frame after it belongs to Epoch, and
// the coordinator discards the node's staging from earlier epochs (the
// partial, pre-crash execution the restart superseded).
type EpochMark struct {
	Epoch uint32
}

// MetricPoint is one cumulative metric value inside a MetricsSnapshot:
// Kind discriminates counter/gauge/histogram-component (mirroring
// obs.MetricKind without importing it), Key is the rendered Prometheus
// series identity (name{labels}), Value the current cumulative value.
type MetricPoint struct {
	Kind  uint8
	Key   string
	Value int64
}

// MetricsSnapshot is a node's periodic live-metrics report to the
// coordinator: a full cumulative dump of its registry, flushed on the
// capture batcher's cadence. Set semantics make re-delivery and session
// replay idempotent; the coordinator merges the points into its live
// registry under a node label and feeds `/metrics`, `/statusz` and
// `pctl top`. AtNs is the node's wall-clock nanoseconds since run
// start, Epoch its current re-execution epoch.
type MetricsSnapshot struct {
	Proc   int32
	Epoch  uint32
	AtNs   int64
	Points []MetricPoint
}

// Detection is the coordinator's broadcast that the live checker
// confirmed possibly(¬B) mid-run: Epoch is the epoch the witness
// belongs to, Node the node whose candidate completed it, AtNs the
// coordinator's nanoseconds since run start at confirmation, and Cut
// the witness global state as one traced state index per logical
// process of the assembled prefix. Nodes treat it as advisory (journal
// + switch a planted rogue back to controlled behavior); the restart
// order, if any, follows as a ReExec frame.
type Detection struct {
	Epoch uint32
	Node  int32
	AtNs  int64
	Cut   []int64
}

// ReExec orders the §8 controlled re-execution that closes the
// active-debugging loop after a live detection: nodes handle it exactly
// like Restart (reset links, mark the new epoch, re-run the workload
// under control), with Edges carrying the size of the control strategy
// the coordinator computed on the detecting prefix (0 when control was
// infeasible on the prefix).
type ReExec struct {
	Epoch uint32
	Edges uint32
}

// RelayHello opens (or resumes) a relay's single upstream session to
// the root coordinator in a hierarchical ingest tree. Relay is the
// relay's index, Relays the fan-in width of the tree level, N the
// cluster size the relay serves. Resume distinguishes a session
// continuation (after a relay-to-root stream break) from a fresh relay
// process coming up after a crash; Epoch carries the relay's cached
// cluster epoch on resume so the root can catch a stale relay up at
// the handshake, exactly as ResumeAck does for a node.
type RelayHello struct {
	Relay  int32
	Relays int32
	N      int32
	Resume bool
	Epoch  uint32
}

// RelayFrame is one forwarded child frame inside a RelayBatch: Origin
// is the child node id and Body the child frame's complete body bytes
// (version|kind|seq|payload), copied through verbatim — the relay never
// re-encodes capture payloads, it only re-frames them. The inner seq is
// the child's own capture-stream sequence number, which the root keeps
// using for per-origin dedup after a relay restart.
type RelayFrame struct {
	Origin int32
	Body   []byte
}

// RelayBatch is the relay's re-batched upstream frame: many child
// frames from many origins packed into one sequenced frame on the
// relay→root session. The outer seq (renumbered by the relay) drives
// session resume on the relay hop; the inner per-origin seqs survive
// inside the bodies, so resume/epoch semantics compose across both
// hops.
type RelayBatch struct {
	Frames []RelayFrame
}

// SegmentRecord is the trace store's on-disk record payload: one staged
// capture frame body (version|kind|seq|payload) tagged with the origin
// node and the epoch it was staged under. Segment files are sequences
// of checksummed SegmentRecord frames, which makes a capture bundle
// self-describing — replay is DecodeBody over the inner bodies, the
// same decode path the live ingest uses.
type SegmentRecord struct {
	Origin int32
	Epoch  uint32
	Body   []byte
}

func (Hello) wireKind() byte           { return kindHello }
func (LinkAck) wireKind() byte         { return kindLinkAck }
func (Ctl) wireKind() byte             { return kindCtl }
func (App) wireKind() byte             { return kindApp }
func (Candidate) wireKind() byte       { return kindCandidate }
func (JournalEvent) wireKind() byte    { return kindJournalEvent }
func (Trace) wireKind() byte           { return kindTrace }
func (Done) wireKind() byte            { return kindDone }
func (Shutdown) wireKind() byte        { return kindShutdown }
func (JournalBatch) wireKind() byte    { return kindJournalBatch }
func (TraceOpBatch) wireKind() byte    { return kindTraceOpBatch }
func (CandidateBatch) wireKind() byte  { return kindCandidateBatch }
func (Resume) wireKind() byte          { return kindResume }
func (ResumeAck) wireKind() byte       { return kindResumeAck }
func (Restart) wireKind() byte         { return kindRestart }
func (EpochMark) wireKind() byte       { return kindEpochMark }
func (Commit) wireKind() byte          { return kindCommit }
func (MetricsSnapshot) wireKind() byte { return kindMetricsSnapshot }
func (Detection) wireKind() byte       { return kindDetection }
func (ReExec) wireKind() byte          { return kindReExec }
func (RelayHello) wireKind() byte      { return kindRelayHello }
func (RelayBatch) wireKind() byte      { return kindRelayBatch }
func (SegmentRecord) wireKind() byte   { return kindSegmentRecord }

// --- encoding ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendVC(b []byte, vc []int32) []byte {
	b = appendUvarint(b, uint64(len(vc)))
	for _, c := range vc {
		b = appendVarint(b, int64(c))
	}
	return b
}

func appendCandidate(dst []byte, v Candidate) []byte {
	dst = appendVarint(dst, int64(v.Proc))
	dst = appendVarint(dst, v.LoIdx)
	dst = appendVarint(dst, v.HiIdx)
	dst = appendVC(dst, v.Lo)
	return appendVC(dst, v.Hi)
}

func appendJournalEvent(dst []byte, v JournalEvent) []byte {
	dst = appendVarint(dst, v.At)
	dst = appendVarint(dst, int64(v.Proc))
	dst = append(dst, v.Kind)
	dst = appendString(dst, v.Name)
	dst = appendVarint(dst, v.A)
	dst = appendVarint(dst, v.B)
	dst = appendVarint(dst, v.C)
	return appendVC(dst, v.VC)
}

// AppendBody appends the frame body (version, kind, seq, payload) for m
// to dst — without the length prefix — and returns the result.
func AppendBody(dst []byte, seq uint64, m Msg) []byte {
	dst = append(dst, Version, m.wireKind())
	dst = appendUvarint(dst, seq)
	switch v := m.(type) {
	case Hello:
		dst = appendVarint(dst, int64(v.From))
		dst = appendVarint(dst, int64(v.N))
	case LinkAck:
		dst = appendUvarint(dst, v.Cum)
	case Ctl:
		dst = append(dst, byte(v.Kind))
		dst = appendVarint(dst, int64(v.From))
		dst = appendVarint(dst, int64(v.To))
		dst = appendUvarint(dst, v.Gen)
		dst = appendUvarint(dst, v.TraceID)
		dst = appendVC(dst, v.VC)
	case App:
		dst = appendVarint(dst, int64(v.From))
		dst = appendVarint(dst, int64(v.To))
		dst = appendUvarint(dst, v.TraceID)
		dst = appendVC(dst, v.VC)
		dst = appendBytes(dst, v.Payload)
	case Candidate:
		dst = appendCandidate(dst, v)
	case JournalEvent:
		dst = appendJournalEvent(dst, v)
	case Trace:
		dst = appendUvarint(dst, uint64(len(v.Ops)))
		for _, op := range v.Ops {
			dst = append(dst, op.Op)
			dst = appendVarint(dst, int64(op.Proc))
			dst = appendUvarint(dst, op.MsgID)
			dst = appendString(dst, op.Name)
			dst = appendVarint(dst, op.Value)
		}
	case JournalBatch:
		dst = appendUvarint(dst, uint64(len(v.Events)))
		for _, e := range v.Events {
			dst = appendJournalEvent(dst, e)
		}
	case TraceOpBatch:
		// Run-length group the ops by process: count the groups first
		// (consecutive ops with equal Proc), then emit each group as a
		// process header followed by its process-tag-free ops.
		groups := 0
		for i, op := range v.Ops {
			if i == 0 || op.Proc != v.Ops[i-1].Proc {
				groups++
			}
		}
		dst = appendUvarint(dst, uint64(groups))
		for i := 0; i < len(v.Ops); {
			j := i
			for j < len(v.Ops) && v.Ops[j].Proc == v.Ops[i].Proc {
				j++
			}
			dst = appendVarint(dst, int64(v.Ops[i].Proc))
			dst = appendUvarint(dst, uint64(j-i))
			for ; i < j; i++ {
				op := v.Ops[i]
				dst = append(dst, op.Op)
				dst = appendUvarint(dst, op.MsgID)
				dst = appendString(dst, op.Name)
				dst = appendVarint(dst, op.Value)
			}
		}
	case CandidateBatch:
		dst = appendUvarint(dst, uint64(len(v.Cands)))
		for _, c := range v.Cands {
			dst = appendCandidate(dst, c)
		}
	case Done:
		dst = appendVarint(dst, int64(v.Proc))
		dst = appendUvarint(dst, v.Requests)
		dst = appendUvarint(dst, v.Handoffs)
		dst = appendUvarint(dst, v.CtlMessages)
		dst = appendUvarint(dst, uint64(len(v.Responses)))
		for _, r := range v.Responses {
			dst = appendVarint(dst, r)
		}
	case Shutdown:
		if v.Epoch != 0 {
			dst = appendUvarint(dst, uint64(v.Epoch))
		}
	case Commit:
	case Resume:
		dst = appendVarint(dst, int64(v.From))
		dst = appendVarint(dst, int64(v.N))
		dst = appendUvarint(dst, uint64(v.Epoch))
	case ResumeAck:
		dst = appendUvarint(dst, v.Cum)
		dst = appendUvarint(dst, uint64(v.Epoch))
	case Restart:
		dst = appendUvarint(dst, uint64(v.Epoch))
	case EpochMark:
		dst = appendUvarint(dst, uint64(v.Epoch))
	case MetricsSnapshot:
		dst = appendVarint(dst, int64(v.Proc))
		dst = appendUvarint(dst, uint64(v.Epoch))
		dst = appendVarint(dst, v.AtNs)
		dst = appendUvarint(dst, uint64(len(v.Points)))
		for _, p := range v.Points {
			dst = append(dst, p.Kind)
			dst = appendString(dst, p.Key)
			dst = appendVarint(dst, p.Value)
		}
	case Detection:
		dst = appendUvarint(dst, uint64(v.Epoch))
		dst = appendVarint(dst, int64(v.Node))
		dst = appendVarint(dst, v.AtNs)
		dst = appendUvarint(dst, uint64(len(v.Cut)))
		for _, s := range v.Cut {
			dst = appendVarint(dst, s)
		}
	case ReExec:
		dst = appendUvarint(dst, uint64(v.Epoch))
		dst = appendUvarint(dst, uint64(v.Edges))
	case RelayHello:
		dst = appendVarint(dst, int64(v.Relay))
		dst = appendVarint(dst, int64(v.Relays))
		dst = appendVarint(dst, int64(v.N))
		if v.Resume {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendUvarint(dst, uint64(v.Epoch))
	case RelayBatch:
		dst = appendUvarint(dst, uint64(len(v.Frames)))
		for _, f := range v.Frames {
			dst = appendVarint(dst, int64(f.Origin))
			dst = appendBytes(dst, f.Body)
		}
	case SegmentRecord:
		dst = appendVarint(dst, int64(v.Origin))
		dst = appendUvarint(dst, uint64(v.Epoch))
		dst = appendBytes(dst, v.Body)
	default:
		panic(fmt.Sprintf("wire: unknown message type %T", m))
	}
	return dst
}

// AppendFrame appends one complete frame — length prefix plus body —
// for m to dst and returns the result. It is the allocation-free encode
// path: callers that reuse dst (the link writer, the coordinator
// client) encode every frame into pooled or writer-owned buffers and
// never touch the heap per frame.
func AppendFrame(dst []byte, seq uint64, m Msg) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendBody(dst, seq, m)
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

// Marshal encodes m as a complete frame: length prefix plus body.
func Marshal(seq uint64, m Msg) []byte {
	return AppendFrame(make([]byte, 0, 64), seq, m)
}

// Buffer is a pooled encode scratch buffer. Frame producers Get one,
// AppendFrame into B, hand the bytes to the wire, and Put it back; the
// pool is shared by the reliable links and the coordinator client, so
// steady-state encoding allocates nothing.
type Buffer struct{ B []byte }

// bufferKeepCap bounds the capacity of buffers returned to the pool: an
// occasional giant batch must not pin megabytes in the pool forever.
const bufferKeepCap = 1 << 16

var bufferPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 256)} }}

// GetBuffer fetches an empty buffer from the shared pool.
func GetBuffer() *Buffer {
	return bufferPool.Get().(*Buffer)
}

// PutBuffer returns a buffer to the pool. The caller must not touch b
// (or aliases of b.B) afterwards. Oversized buffers are dropped.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.B) > bufferKeepCap {
		return
	}
	b.B = b.B[:0]
	bufferPool.Put(b)
}

// --- decoding ---

var (
	// ErrVersion is returned for a frame of a different protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrTruncated is returned when a frame body ends mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTrailing is returned when a frame body has bytes past its
	// payload — strict framing catches desynchronized streams early.
	ErrTrailing = errors.New("wire: trailing bytes after payload")
	// ErrFrameSize is returned when a length prefix exceeds MaxFrame.
	ErrFrameSize = errors.New("wire: frame exceeds size limit")
)

// dec is a cursor over a frame body with sticky error handling.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i32() int32 { return int32(d.varint()) }

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += int(n)
	return out
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) candidate() Candidate {
	return Candidate{Proc: d.i32(), LoIdx: d.varint(), HiIdx: d.varint(),
		Lo: d.vc(), Hi: d.vc()}
}

func (d *dec) journalEvent() JournalEvent {
	return JournalEvent{At: d.varint(), Proc: d.i32(), Kind: d.u8(),
		Name: d.str(), A: d.varint(), B: d.varint(), C: d.varint(), VC: d.vc()}
}

func (d *dec) vc() []int32 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxVC || n > uint64(len(d.b)-d.off) { // each component ≥ 1 byte
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

// DecodeBody decodes one frame body (without the length prefix).
func DecodeBody(body []byte) (seq uint64, m Msg, err error) {
	d := &dec{b: body}
	if v := d.u8(); d.err == nil && v != Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	kind := d.u8()
	seq = d.uvarint()
	switch kind {
	case kindHello:
		m = Hello{From: d.i32(), N: d.i32()}
	case kindLinkAck:
		m = LinkAck{Cum: d.uvarint()}
	case kindCtl:
		m = Ctl{Kind: CtlKind(d.u8()), From: d.i32(), To: d.i32(),
			Gen: d.uvarint(), TraceID: d.uvarint(), VC: d.vc()}
	case kindApp:
		m = App{From: d.i32(), To: d.i32(), TraceID: d.uvarint(),
			VC: d.vc(), Payload: d.bytes()}
	case kindCandidate:
		m = d.candidate()
	case kindJournalEvent:
		m = d.journalEvent()
	case kindTrace:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each op ≥ 1 byte
			d.fail()
		}
		var ops []TraceOp
		if d.err == nil && n > 0 {
			ops = make([]TraceOp, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				ops = append(ops, TraceOp{Op: d.u8(), Proc: d.i32(),
					MsgID: d.uvarint(), Name: d.str(), Value: d.varint()})
			}
		}
		m = Trace{Ops: ops}
	case kindJournalBatch:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each event ≥ 1 byte
			d.fail()
		}
		var evs []JournalEvent
		if d.err == nil && n > 0 {
			evs = make([]JournalEvent, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				evs = append(evs, d.journalEvent())
			}
		}
		m = JournalBatch{Events: evs}
	case kindTraceOpBatch:
		groups := d.uvarint()
		if d.err == nil && groups > uint64(len(d.b)-d.off) { // each group ≥ 1 byte
			d.fail()
		}
		var ops []TraceOp
		for g := uint64(0); g < groups && d.err == nil; g++ {
			proc := d.i32()
			n := d.uvarint()
			if d.err == nil && n > uint64(len(d.b)-d.off) { // each op ≥ 1 byte
				d.fail()
				break
			}
			if d.err == nil && ops == nil && n > 0 {
				ops = make([]TraceOp, 0, n)
			}
			for i := uint64(0); i < n && d.err == nil; i++ {
				ops = append(ops, TraceOp{Op: d.u8(), Proc: proc,
					MsgID: d.uvarint(), Name: d.str(), Value: d.varint()})
			}
		}
		m = TraceOpBatch{Ops: ops}
	case kindCandidateBatch:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each candidate ≥ 1 byte
			d.fail()
		}
		var cands []Candidate
		if d.err == nil && n > 0 {
			cands = make([]Candidate, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				cands = append(cands, d.candidate())
			}
		}
		m = CandidateBatch{Cands: cands}
	case kindDone:
		v := Done{Proc: d.i32(), Requests: d.uvarint(), Handoffs: d.uvarint(),
			CtlMessages: d.uvarint()}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each entry ≥ 1 byte
			d.fail()
		}
		if d.err == nil && n > 0 {
			v.Responses = make([]int64, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				v.Responses = append(v.Responses, d.varint())
			}
		}
		m = v
	case kindShutdown:
		v := Shutdown{}
		if d.off < len(d.b) {
			v.Epoch = uint32(d.uvarint())
		}
		m = v
	case kindCommit:
		m = Commit{}
	case kindResume:
		m = Resume{From: d.i32(), N: d.i32(), Epoch: uint32(d.uvarint())}
	case kindResumeAck:
		m = ResumeAck{Cum: d.uvarint(), Epoch: uint32(d.uvarint())}
	case kindRestart:
		m = Restart{Epoch: uint32(d.uvarint())}
	case kindEpochMark:
		m = EpochMark{Epoch: uint32(d.uvarint())}
	case kindMetricsSnapshot:
		v := MetricsSnapshot{Proc: d.i32(), Epoch: uint32(d.uvarint()), AtNs: d.varint()}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each point ≥ 1 byte
			d.fail()
		}
		if d.err == nil && n > 0 {
			v.Points = make([]MetricPoint, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				v.Points = append(v.Points, MetricPoint{Kind: d.u8(), Key: d.str(), Value: d.varint()})
			}
		}
		m = v
	case kindDetection:
		v := Detection{Epoch: uint32(d.uvarint()), Node: d.i32(), AtNs: d.varint()}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each entry ≥ 1 byte
			d.fail()
		}
		if d.err == nil && n > 0 {
			v.Cut = make([]int64, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				v.Cut = append(v.Cut, d.varint())
			}
		}
		m = v
	case kindReExec:
		m = ReExec{Epoch: uint32(d.uvarint()), Edges: uint32(d.uvarint())}
	case kindRelayHello:
		m = RelayHello{Relay: d.i32(), Relays: d.i32(), N: d.i32(),
			Resume: d.u8() != 0, Epoch: uint32(d.uvarint())}
	case kindRelayBatch:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)-d.off) { // each frame ≥ 1 byte
			d.fail()
		}
		var frames []RelayFrame
		if d.err == nil && n > 0 {
			frames = make([]RelayFrame, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				frames = append(frames, RelayFrame{Origin: d.i32(), Body: d.bytes()})
			}
		}
		m = RelayBatch{Frames: frames}
	case kindSegmentRecord:
		m = SegmentRecord{Origin: d.i32(), Epoch: uint32(d.uvarint()), Body: d.bytes()}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown frame kind %d", kind)
		}
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if d.off != len(d.b) {
		return 0, nil, fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, d.off, len(d.b))
	}
	return seq, m, nil
}

// PeekBody parses only the header of a frame body — version check,
// kind, seq — without touching the payload. It is the relay's routing
// read: a forwarded body is classified and re-framed by header alone,
// and full decoding happens exactly once, at the root.
func PeekBody(body []byte) (kind byte, seq uint64, err error) {
	d := &dec{b: body}
	if v := d.u8(); d.err == nil && v != Version {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	kind = d.u8()
	seq = d.uvarint()
	if d.err != nil {
		return 0, 0, d.err
	}
	return kind, seq, nil
}

// AppendRawFrame appends one complete frame — length prefix plus an
// already-encoded body — to dst. It is the pass-through counterpart of
// AppendFrame for forwarding paths that hold raw bodies.
func AppendRawFrame(dst, body []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, body...)
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

// WriteFrame writes one complete frame to w.
func WriteFrame(w io.Writer, seq uint64, m Msg) error {
	_, err := w.Write(Marshal(seq, m))
	return err
}

// ReadFrame reads one complete frame from r: the length prefix, then
// the body, which it decodes. io.EOF is returned verbatim on a clean
// end-of-stream boundary.
func ReadFrame(r io.Reader) (seq uint64, m Msg, err error) {
	body, err := ReadRawBody(r)
	if err != nil {
		return 0, nil, err
	}
	return DecodeBody(body)
}

// ReadRawBody reads one frame from r and returns its raw body bytes
// without decoding the payload. Relays and the root's ingest loop read
// this way so a body can be forwarded or spilled to the trace store
// verbatim; io.EOF is returned verbatim on a clean frame boundary.
func ReadRawBody(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}
