package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// every message kind, with both zero and populated fields.
func sampleMsgs() []Msg {
	return []Msg{
		Hello{From: 3, N: 5},
		Hello{From: -1, N: 8}, // coordinator handshake
		LinkAck{Cum: 0},
		LinkAck{Cum: 1<<63 + 17},
		Ctl{Kind: CtlReq, From: 0, To: 4, Gen: 7, TraceID: 1 << 40, VC: []int32{-1, 0, 12}},
		Ctl{Kind: CtlCancel, From: 2, To: 0},
		App{From: 1, To: 2, TraceID: 99, VC: []int32{5, -1, 3}, Payload: []byte("hi")},
		App{From: 0, To: 1},
		Candidate{Proc: 2, LoIdx: 4, HiIdx: 9, Lo: []int32{1, 2, 3}, Hi: []int32{4, 5, 6}},
		JournalEvent{At: 123456789, Proc: 7, Kind: 7, Name: "scapegoat.acquire", A: 2, B: 1, C: 3},
		JournalEvent{At: -5, Proc: 0, Kind: 1, A: -1, B: -2, C: -3, VC: []int32{-1}},
		Trace{},
		Trace{Ops: []TraceOp{
			{Op: TraceInit, Proc: 0, Name: "cs", Value: 0},
			{Op: TraceSend, Proc: 3, MsgID: 1<<48 | 42},
			{Op: TraceRecv, Proc: 1, MsgID: 1<<48 | 42},
			{Op: TraceSet, Proc: 0, Name: "cs", Value: 1},
			{Op: TraceStep, Proc: 2},
		}},
		Done{Proc: 4, Requests: 10, Handoffs: 3, CtlMessages: 6, Responses: []int64{0, 1500, 2_000_000}},
		Done{Proc: 0},
		Shutdown{},
		Shutdown{Epoch: 9},
		Commit{},
		JournalBatch{},
		JournalBatch{Events: []JournalEvent{
			{At: 1, Proc: 2, Kind: 7, Name: "ctl.req", A: 3, C: 9, VC: []int32{1, 0}},
			{At: 2, Proc: 0, Kind: 6, Name: "cs", A: 1},
			{At: -7, Proc: 5, Kind: 1, B: -2},
		}},
		TraceOpBatch{},
		TraceOpBatch{Ops: []TraceOp{ // runs of equal Proc plus singletons
			{Op: TraceInit, Proc: 0, Name: "cs", Value: 0},
			{Op: TraceSend, Proc: 0, MsgID: 7},
			{Op: TraceRecv, Proc: 3, MsgID: 7},
			{Op: TraceSend, Proc: 3, MsgID: 1 << 44},
			{Op: TraceSet, Proc: 0, Name: "cs", Value: 1},
		}},
		CandidateBatch{},
		CandidateBatch{Cands: []Candidate{
			{Proc: 1, LoIdx: 2, HiIdx: 4, Lo: []int32{1, 0}, Hi: []int32{3, 2}},
			{Proc: 0, LoIdx: 0, HiIdx: 0},
		}},
		Resume{From: 2, N: 8, Epoch: 0},
		Resume{From: 0, N: 128, Epoch: 41},
		ResumeAck{},
		ResumeAck{Cum: 1<<50 + 3, Epoch: 9},
		Restart{Epoch: 1},
		EpochMark{Epoch: 12},
		MetricsSnapshot{},
		MetricsSnapshot{Proc: 7, Epoch: 3, AtNs: -12345, Points: []MetricPoint{
			{Kind: 1, Key: `a_total{node="7"}`, Value: 1 << 40},
			{Kind: 4, Key: "lat_ns", Value: -9},
		}},
		Detection{},
		Detection{Epoch: 3, Node: -1, AtNs: 9_000_000, Cut: []int64{1, 0, -1, 7}},
		ReExec{Epoch: 1},
		ReExec{Epoch: 6, Edges: 12},
		RelayHello{Relay: 0, Relays: 4, N: 64},
		RelayHello{Relay: 3, Relays: 4, N: 64, Resume: true, Epoch: 2},
		RelayBatch{},
		RelayBatch{Frames: []RelayFrame{
			{Origin: 5, Body: AppendBody(nil, 12, EpochMark{Epoch: 2})},
			{Origin: 0, Body: AppendBody(nil, 3, Candidate{Proc: 0, LoIdx: 1, HiIdx: 2})},
		}},
		SegmentRecord{},
		SegmentRecord{Origin: 7, Epoch: 3,
			Body: AppendBody(nil, 41, JournalEvent{At: 5, Proc: 7, Kind: 6, Name: "cs", A: 1})},
	}
}

func TestRoundTrip(t *testing.T) {
	for i, m := range sampleMsgs() {
		seq := uint64(i * 13)
		frame := Marshal(seq, m)
		gotSeq, got, err := DecodeBody(frame[4:])
		if err != nil {
			t.Fatalf("msg %d (%T): decode: %v", i, m, err)
		}
		if gotSeq != seq {
			t.Errorf("msg %d: seq %d, want %d", i, gotSeq, seq)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("msg %d (%T): round trip\n got %#v\nwant %#v", i, m, got, m)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs()
	for i, m := range msgs {
		if err := WriteFrame(&buf, uint64(i), m); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		seq, got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint64(i) || !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got seq=%d %#v", i, seq, got)
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Marshal(1, Ctl{Kind: CtlAck, From: 1, To: 0, Gen: 2, VC: []int32{0, 1}})[4:]

	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad version", append([]byte{Version + 1}, good[1:]...), ErrVersion},
		{"unknown kind", []byte{Version, 0xEE, 0}, nil},
		{"truncated payload", good[:len(good)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0), ErrTrailing},
	}
	for _, tc := range cases {
		_, _, err := DecodeBody(tc.body)
		if err == nil {
			t.Errorf("%s: decode accepted", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeHostileLengths(t *testing.T) {
	// A vector-clock count far beyond the frame must fail cleanly, not
	// allocate gigabytes.
	body := []byte{Version, kindCtl, 0 /* seq */, byte(CtlReq), 0, 0, 0, 0}
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // huge VC count
	if _, _, err := DecodeBody(body); err == nil {
		t.Fatal("hostile VC count accepted")
	}

	// A length prefix beyond MaxFrame must be rejected before reading.
	var hdr [4]byte
	hdr[0] = 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized frame: got %v, want ErrFrameSize", err)
	}
}

// TestAppendFrame pins the allocation-free path to Marshal: same bytes,
// correct appending onto a non-empty prefix, and a pooled round trip.
func TestAppendFrame(t *testing.T) {
	for i, m := range sampleMsgs() {
		want := Marshal(uint64(i), m)
		got := AppendFrame(nil, uint64(i), m)
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d (%T): AppendFrame differs from Marshal", i, m)
		}
		pre := []byte{0xAA, 0xBB}
		app := AppendFrame(append([]byte(nil), pre...), uint64(i), m)
		if !bytes.Equal(app[:2], pre) || !bytes.Equal(app[2:], want) {
			t.Fatalf("msg %d (%T): AppendFrame clobbered its prefix", i, m)
		}
	}
	buf := GetBuffer()
	buf.B = AppendFrame(buf.B[:0], 9, Hello{From: 1, N: 4})
	if _, _, err := ReadFrame(bytes.NewReader(buf.B)); err != nil {
		t.Fatalf("pooled frame did not decode: %v", err)
	}
	PutBuffer(buf)
	// Oversized buffers must be dropped, not pinned in the pool.
	big := &Buffer{B: make([]byte, 0, bufferKeepCap+1)}
	PutBuffer(big)
	PutBuffer(nil) // must not panic
}

// TestTraceOpBatchGrouping pins the grouped encoding's compactness win:
// a proc-alternating op stream costs no more than the flat Trace form,
// and a long single-proc run costs strictly less.
func TestTraceOpBatchGrouping(t *testing.T) {
	run := make([]TraceOp, 64)
	for i := range run {
		run[i] = TraceOp{Op: TraceStep, Proc: 5, MsgID: uint64(i)}
	}
	grouped := len(Marshal(0, TraceOpBatch{Ops: run}))
	flat := len(Marshal(0, Trace{Ops: run}))
	if grouped >= flat {
		t.Fatalf("grouped encoding (%dB) not smaller than flat (%dB) on a single-proc run", grouped, flat)
	}
}

func TestReadFrameShortBody(t *testing.T) {
	frame := Marshal(3, Hello{From: 1, N: 4})
	_, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("short body: got %v, want ErrUnexpectedEOF", err)
	}
}
