package predctl

// End-to-end stress: hundreds of random computations driven through the
// full active-debugging cycle — detect, control (all engines), verify,
// replay under random delays — plus on-line control runs, all checked
// against exhaustive oracles. Skipped under -short; the per-package
// property tests already cover smaller doses of the same invariants.

import (
	"errors"
	"math/rand"
	"testing"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/kmutex"
	"predctl/internal/offline"
	"predctl/internal/predicate"
	"predctl/internal/replay"
	"predctl/internal/sim"
)

func TestStressOfflineCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short")
	}
	const instances = 600
	r := rand.New(rand.NewSource(20260706))
	feasible, infeasible := 0, 0
	for i := 0; i < instances; i++ {
		n := 1 + r.Intn(5)
		d := deposet.Random(r, deposet.DefaultGen(n, r.Intn(24)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.25+r.Float64()*0.6))
		want := func() bool {
			_, ok := detect.SGSD(d, dj.Expr(), false)
			return ok
		}()

		res, err := offline.Control(d, dj, offline.Options{})
		if errors.Is(err, offline.ErrInfeasible) {
			if want {
				t.Fatalf("instance %d: infeasible verdict on feasible instance", i)
			}
			infeasible++
			// The witness must pairwise overlap.
			for a := range res.Witness {
				for b := range res.Witness {
					if a != b && !detect.OverlapsView(d, res.Witness[a], res.Witness[b]) {
						t.Fatalf("instance %d: witness does not overlap", i)
					}
				}
			}
			continue
		}
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !want {
			t.Fatalf("instance %d: controller produced for infeasible instance", i)
		}
		if res.Fallback {
			t.Fatalf("instance %d: exhaustive fallback triggered", i)
		}
		feasible++
		x, err := control.Extend(d, res.Relation)
		if err != nil {
			t.Fatalf("instance %d: relation interferes: %v", i, err)
		}
		if cut, bad := detect.PossiblyTruth(x, func(p, k int) bool { return !dj.Holds(d, p, k) }); bad {
			t.Fatalf("instance %d: controlled computation violates B at %v", i, cut)
		}
		// One controlled replay under random delays.
		rr, err := replay.Run(d, res.Relation, replay.Config{
			Seed:  int64(i),
			Delay: sim.UniformDelay(1, 1+sim.Time(r.Intn(15))),
		})
		if err != nil {
			t.Fatalf("instance %d: replay: %v", i, err)
		}
		if cut, ok := replay.VerifyDisjunction(rr, d, dj); !ok {
			t.Fatalf("instance %d: replay violates B at %v", i, cut)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("unbalanced stress corpus: %d feasible, %d infeasible", feasible, infeasible)
	}
	t.Logf("stress: %d feasible + %d infeasible instances verified", feasible, infeasible)
}

func TestStressOnlineSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short")
	}
	for i := 0; i < 80; i++ {
		n := 2 + i%5
		w := kmutex.Workload{
			N: n, Rounds: 5, ThinkMax: 50, CS: sim.Time(5 + i%40),
			Delay: sim.Time(1 + i%12), Seed: int64(i), Trace: true,
		}
		tr, _, err := kmutex.RunScapegoat(w, i%2 == 0)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if cut, bad := detect.PossiblyTruth(tr.D, func(p, k int) bool {
			if p >= n {
				return true
			}
			v, ok := tr.D.Var(deposet.StateID{P: p, K: k}, "cs")
			return ok && v == 1
		}); bad {
			t.Fatalf("run %d: all-in-CS at %v", i, cut)
		}
	}
}

func TestStressEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short")
	}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		d := deposet.Random(r, deposet.DefaultGen(1+r.Intn(4), r.Intn(20)))
		dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.5))
		_, e1 := offline.Control(d, dj, offline.Options{})
		_, e2 := offline.ControlFigure2(d, dj, offline.Options{})
		if errors.Is(e1, offline.ErrInfeasible) != errors.Is(e2, offline.ErrInfeasible) {
			t.Fatalf("instance %d: engines disagree on feasibility: %v vs %v", i, e1, e2)
		}
	}
}
