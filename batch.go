package predctl

import (
	"fmt"

	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/par"
)

// This file is the batch layer of the parallel engine: many traced
// computations analyzed concurrently across a worker pool, the shape of
// the E1/E2-style sweeps (one verdict per trace, order preserved).
// Within a batch each trace is analyzed with the detection engine
// forced sequential — the batch already saturates the pool with
// trace-level work, and stacking per-trace sharding on top would only
// oversubscribe the scheduler. Analyze a single huge trace with
// Possibly/Definitely/Violations instead: those shard internally.

// DetectVerdict is DetectBatch's per-trace result: the Possibly witness
// cut and the Definitely witness interval set, as from the Possibly and
// Definitely functions.
type DetectVerdict struct {
	Cut       Cut
	Possible  bool
	Intervals []Interval
	Definite  bool
}

// DetectBatch runs conjunctive detection (Possibly and Definitely) on
// many traces concurrently across `workers` goroutines (0 means
// GOMAXPROCS). qs[i] is evaluated on ds[i]; the lists must have equal
// length. Verdicts come back in input order. The local predicates in qs
// must be pure functions of their state index — batch workers evaluate
// them concurrently.
func DetectBatch(ds []*Computation, qs []*Conjunction, workers int) ([]DetectVerdict, error) {
	if len(ds) != len(qs) {
		return nil, fmt.Errorf("predctl: %d computations for %d conjunctions", len(ds), len(qs))
	}
	out := make([]DetectVerdict, len(ds))
	seq := detect.Par{Workers: 1}
	par.ForEach(len(ds), workers, func(i int) {
		d, q := ds[i], qs[i]
		holds := func(p, k int) bool { return q.Holds(d, p, k) }
		out[i].Cut, out[i].Possible = detect.PossiblyTruthPar(d, holds, seq)
		out[i].Intervals, out[i].Definite = detect.DefinitelyTruthPar(d, holds, seq)
	})
	return out, nil
}

// ControlVerdict is ControlBatch's per-trace result: exactly what
// Control returns for that trace (Err is ErrInfeasible — with the
// witness in Res — when no controller exists).
type ControlVerdict struct {
	Res *ControlResult
	Err error
}

// ControlBatch synthesizes off-line controllers for many traces
// concurrently across `workers` goroutines (0 means GOMAXPROCS).
// bs[i] is enforced on ds[i]; the lists must have equal length.
// Verdicts come back in input order. The local predicates in bs must be
// pure functions of their state index — batch workers evaluate them
// concurrently.
func ControlBatch(ds []*Computation, bs []*Disjunction, workers int) ([]ControlVerdict, error) {
	if len(ds) != len(bs) {
		return nil, fmt.Errorf("predctl: %d computations for %d disjunctions", len(ds), len(bs))
	}
	out := make([]ControlVerdict, len(ds))
	opts := offline.Options{Par: detect.Par{Workers: 1}}
	par.ForEach(len(ds), workers, func(i int) {
		out[i].Res, out[i].Err = offline.Control(ds[i], bs[i], opts)
	})
	return out, nil
}
