// Kmutex reproduces the paper's §6 comparison: the anti-token on-line
// controller, specialized to k = n−1 mutual exclusion, against a
// centralized coordinator and a distributed k-token algorithm, all on
// the same workload.
//
//	go run ./examples/kmutex
package main

import (
	"fmt"
	"log"

	"predctl/internal/kmutex"
	"predctl/internal/sim"
)

func main() {
	w := kmutex.Workload{
		N:        8,
		Rounds:   30,
		ThinkMax: 300,
		CS:       20,
		Delay:    5,
		Seed:     2024,
	}
	fmt.Printf("workload: n=%d, %d entries/process, T=%d, Emax=%d\n\n",
		w.N, w.Rounds, w.Delay, w.CS)
	fmt.Printf("%-22s %10s %12s %10s %10s\n",
		"protocol", "messages", "msgs/entry", "mean resp", "max resp")

	row := func(name string, m *kmutex.Metrics, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %10d %12.2f %10.1f %10d\n",
			name, m.CtlMessages, m.MessagesPerEntry(), m.MeanResponse(), m.MaxResponse())
	}

	_, m, err := kmutex.RunUncontrolled(w)
	row("uncontrolled (unsafe)", m, err)
	_, m, err = kmutex.RunCentral(w)
	row("central coordinator", m, err)
	_, m, err = kmutex.RunToken(w)
	row("k tokens (k=n-1)", m, err)
	_, m, err = kmutex.RunScapegoat(w, false)
	row("anti-token (paper)", m, err)
	_, m, err = kmutex.RunScapegoat(w, true)
	row("anti-token broadcast", m, err)

	fmt.Printf("\npaper's claims: anti-token ≈ 2 messages per n entries (= %.2f/entry here),\n",
		2.0/float64(w.N))
	fmt.Printf("handoff response in [2T, 2T+Emax] = [%d, %d].\n", 2*w.Delay, 2*w.Delay+w.CS)
	_ = sim.Time(0)
}
