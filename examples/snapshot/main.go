// Snapshot demonstrates the observation substrate beneath the debugging
// cycle: a Chandy–Lamport distributed snapshot (the paper's reference
// [3]) of a running money-transfer system. The recorded global state —
// account balances plus messages in flight — conserves the total, and,
// checked against the traced computation, is a consistent cut of it.
//
//	go run ./examples/snapshot
package main

import (
	"fmt"
	"log"

	"predctl"
)

const (
	accounts = 4
	initial  = 100
	rounds   = 25
)

func main() {
	col := predctl.NewSnapshotCollector()
	k := predctl.NewSim(predctl.SimConfig{
		Procs: accounts,
		Delay: predctl.UniformDelay(1, 9),
		Seed:  13,
		Trace: true,
		FIFO:  true, // Chandy–Lamport needs FIFO channels
	})
	bodies := make([]func(*predctl.Proc), accounts)
	for i := range bodies {
		i := i
		bodies[i] = func(p *predctl.Proc) {
			balance := initial
			p.Init("balance", balance)
			node := predctl.NewSnapshotNode(p, col, func() any { return balance })
			for step := 0; step < rounds; step++ {
				if i == 0 && step == rounds/2 {
					node.Initiate() // audit starts mid-run at account 0
				}
				if amt := p.Rand().Intn(balance/2 + 1); amt > 0 {
					to := p.Rand().Intn(accounts - 1)
					if to >= i {
						to++
					}
					balance -= amt
					p.Set("balance", balance)
					node.Send(to, amt)
				}
				p.Work(predctl.Time(1 + p.Rand().Intn(5)))
				if _, v, ok := node.TryRecv(); ok {
					balance += v.(int)
					p.Set("balance", balance)
				}
			}
			for { // keep applying transfers until the audit completes
				_, v, ok := node.RecvOrDone()
				if !ok {
					break
				}
				balance += v.(int)
				p.Set("balance", balance)
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		log.Fatal(err)
	}

	sum := 0
	for p := 0; p < accounts; p++ {
		r := col.Records[p]
		fmt.Printf("account %d: balance %3d at its recorded state %d\n", p, r.State.(int), r.StateIndex)
		sum += r.State.(int)
	}
	inFlight := 0
	for _, v := range col.InFlight() {
		inFlight += v.(int)
	}
	fmt.Printf("in flight: %d across recorded channels\n", inFlight)
	fmt.Printf("audit total: %d (expected %d) — conserved: %v\n",
		sum+inFlight, accounts*initial, sum+inFlight == accounts*initial)

	cut := predctl.Cut(col.Cut(accounts))
	fmt.Printf("recorded cut %v is a consistent global state of the trace: %v\n",
		cut, tr.D.Consistent(cut))
}
