// Servers walks through the paper's §7 example (Figure 4): active
// debugging of a replicated server system. It reproduces the full cycle
// C1 → C2 → C3 → C4 and the final on-line phase, narrating each step.
//
//	go run ./examples/servers
package main

import (
	"fmt"
	"log"
	"strings"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/offline"
	"predctl/internal/online"
	"predctl/internal/replay"
	"predctl/internal/scenario"
)

func main() {
	fg, err := scenario.New()
	if err != nil {
		log.Fatal(err)
	}
	d := fg.C1

	fmt.Println("=== Computation C1 (observed trace) ===")
	drawAvailability(d)

	fmt.Println("\n--- Step 1: detect bug 1: \"all servers unavailable\" ---")
	violations := detect.AllViolations(d, fg.Avail.Expr())
	fmt.Printf("bug 1 is possible at %d consistent global states:\n", len(violations))
	names := []string{"G", "H"}
	for i, v := range violations {
		name := "·"
		if i < len(names) {
			name = names[i]
		}
		fmt.Printf("  %s = %v\n", name, v)
	}

	fmt.Println("\n--- Step 2: control C1 with B = avail0 ∨ avail1 ∨ avail2 ---")
	res1, err := offline.Control(d, fg.Avail, offline.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("off-line controller adds %d control message(s):\n", len(res1.Relation))
	for _, e := range res1.Relation {
		fmt.Printf("  %v   (server %d waits before state %d until server %d passed state %d)\n",
			e, e.To.P, e.To.K, e.From.P, e.From.K)
	}
	c2, err := replay.Run(d, res1.Relation, replay.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replayed under control → computation C2")
	report(c2.Trace.D, "bug 1", holds(fg.Bug1On(c2.Underlying), c2.Trace.D))
	report(c2.Trace.D, "bug 2 (e and f co-occur)", holds(fg.Bug2On(c2.Underlying), c2.Trace.D))

	fmt.Println("\n--- Step 3: control C2 with \"e must happen before f\" ---")
	fmt.Printf("e = %v (server 2 leaves maintenance), f = %v (server 0 enters it)\n", fg.E, fg.F)
	res3, err := offline.Control(c2.Trace.D, fg.EBeforeFMapped(c2.Underlying), offline.Options{})
	if err != nil {
		log.Fatal(err)
	}
	c3, err := replay.Run(c2.Trace.D, res3.Relation, replay.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	composed := make([][]int, 3)
	for p := range composed {
		for _, k := range c3.Underlying[p] {
			composed[p] = append(composed[p], c2.Underlying[p][k])
		}
	}
	fmt.Println("replayed → computation C3")
	report(c3.Trace.D, "bug 2", holds(fg.Bug2On(composed), c3.Trace.D))

	fmt.Println("\n--- Step 4: suspect bug 2 caused bug 1 — apply the fix to C1 ---")
	res4, err := offline.Control(d, fg.EBeforeF, offline.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller for \"e before f\" on C1: %v\n", res4.Relation)
	c4, err := replay.Run(d, res4.Relation, replay.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replayed → computation C4")
	report(c4.Trace.D, "bug 2", holds(fg.Bug2On(c4.Underlying), c4.Trace.D))
	report(c4.Trace.D, "bug 1", holds(fg.Bug1On(c4.Underlying), c4.Trace.D))
	x, err := control.Extend(d, res4.Relation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("under this control, the violating cuts are gone: ")
	for i, v := range violations {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s consistent=%v", names[i], x.Consistent(v))
	}
	fmt.Println()
	fmt.Println("⇒ eliminating bug 2 also eliminates bug 1: bug 2 is the root cause.")

	fmt.Println("\n--- Step 5: protect future runs on-line ---")
	tr, stats, err := online.Run(online.Config{
		N: 2, Delay: 5, Trace: true,
		Scapegoat: 0,
		InitFalse: []bool{false, true}, // after_e is false until e happens
	}, []func(*online.Guard){
		func(g *online.Guard) { // server 0 wants to execute f early
			g.P().Init("f", 0)
			g.P().Work(1)
			g.RequestFalse() // blocks until e has happened
			g.P().Set("f", 1)
		},
		func(g *online.Guard) { // server 2: e happens late
			g.P().Init("e", 0)
			g.P().Work(50)
			g.P().Set("e", 1)
			g.NowTrue()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, bad := detect.PossiblyTruth(tr.D, func(p, k int) bool {
		if p == 0 {
			v, ok := tr.D.Var(deposet.StateID{P: 0, K: k}, "f")
			return ok && v == 1
		}
		if p == 1 {
			v, ok := tr.D.Var(deposet.StateID{P: 1, K: k}, "e")
			return !ok || v == 0
		}
		return true
	}); bad {
		log.Fatal("online control failed to order e before f")
	}
	fmt.Printf("on-line controller kept e before f in a fresh run (%d control messages)\n",
		stats.CtlMessages)
	fmt.Println("\nactive debugging cycle complete.")
}

// holds adapts a conjunction to a HoldsFn over the given computation.
func holds(cj interface {
	Holds(d *deposet.Deposet, p, k int) bool
}, d *deposet.Deposet) detect.HoldsFn {
	return func(p, k int) bool { return cj.Holds(d, p, k) }
}

func report(d *deposet.Deposet, name string, h detect.HoldsFn) {
	if cut, ok := detect.PossiblyTruth(d, h); ok {
		fmt.Printf("  %-26s possible, e.g. at %v\n", name+":", cut)
	} else {
		fmt.Printf("  %-26s impossible ✓\n", name+":")
	}
}

// drawAvailability renders each server's availability timeline.
func drawAvailability(d *deposet.Deposet) {
	for p := 0; p < d.NumProcs(); p++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "  P%d: ", p)
		for k := 0; k < d.Len(p); k++ {
			v, _ := d.Var(deposet.StateID{P: p, K: k}, "avail")
			if v == 1 {
				sb.WriteString("──")
			} else {
				sb.WriteString("▓▓") // unavailable
			}
		}
		fmt.Println(sb.String())
	}
	fmt.Println("  (▓ = unavailable; message: P1's first event → P2's first event)")
}
