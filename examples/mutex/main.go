// Mutex demonstrates the paper's first example predicate — two-process
// mutual exclusion ¬cs1 ∨ ¬cs2 — end to end: simulate an uncontrolled
// buggy run, trace it, detect the race, synthesize the off-line
// controller, and replay with the race excluded.
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"

	"predctl"
)

func main() {
	// Simulate two processes that enter a critical section with no
	// synchronization at all — the computation under debugging.
	k := predctl.NewSim(predctl.SimConfig{Procs: 2, Seed: 9, Trace: true})
	body := func(p *predctl.Proc) {
		p.Init("cs", 0)
		for round := 0; round < 3; round++ {
			p.Work(predctl.Time(p.Rand().Intn(15)))
			p.Set("cs", 1) // enter critical section (no lock!)
			p.Work(10)
			p.Set("cs", 0)
		}
	}
	tr, err := k.Run(body, body)
	if err != nil {
		log.Fatal(err)
	}
	d := tr.D
	fmt.Printf("traced %d states, %d critical sections per process\n", d.NumStates(), 3)

	// B = ¬cs0 ∨ ¬cs1: at most one process in its critical section.
	B := predctl.NewDisjunction(2)
	for p := 0; p < 2; p++ {
		p := p
		B.Add(p, "¬cs", func(dd *predctl.Computation, kk int) bool {
			v, ok := dd.Var(predctl.StateID{P: p, K: kk}, "cs")
			return !ok || v == 0
		})
	}

	cut, racy := predctl.Possibly(d, B.Negate())
	if !racy {
		fmt.Println("this trace happens to be race-free; rerun with another seed")
		return
	}
	fmt.Printf("race detected: both in CS possible, e.g. at %v\n", cut)

	res, err := predctl.Control(d, B)
	if err != nil {
		log.Fatalf("control: %v", err)
	}
	fmt.Printf("controller: %d control message(s) — the paper's bound is one per critical section\n",
		len(res.Relation))
	for _, e := range res.Relation {
		fmt.Printf("  %v\n", e)
	}

	// Replay under several delay regimes: mutual exclusion must hold in
	// every one of them, because the control is causal, not temporal.
	for seed := int64(0); seed < 5; seed++ {
		rr, err := predctl.Replay(d, res.Relation, predctl.ReplayConfig{Seed: seed})
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		if vcut, ok := predctl.VerifyReplay(rr, d, B); !ok {
			log.Fatalf("replay %d violated mutual exclusion at %v", seed, vcut)
		}
	}
	fmt.Println("5 controlled replays verified: mutual exclusion enforced in all of them")
}
