// Cluster runs the paper's anti-token mutual-exclusion controller over
// a real network: five node daemons on localhost TCP, each hosting one
// application process and its controller, with seeded fault injection
// (drops, duplicates, latency) on every protocol link. The coordinator
// captures the run as a deposet trace, checks the paper-bound
// invariants on the merged journal, and finally replays the captured
// trace on the simulator to show offline and online tooling consume
// the same artifact.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"predctl/internal/detect"
	"predctl/internal/node"
	"predctl/internal/obs"
	"predctl/internal/replay"
	"predctl/internal/sim"
	"predctl/internal/trace"
)

func main() {
	const n, rounds = 5, 3
	j := obs.NewJournal(0)
	reg := obs.NewRegistry()

	res, err := node.RunCluster(node.ClusterConfig{
		N: n, Rounds: rounds,
		Think: 3 * time.Millisecond, CS: time.Millisecond,
		Seed: 1998,
		Faults: node.Faults{
			Drop: 0.2, Dup: 0.1,
			Delay: 2 * time.Millisecond, Jitter: time.Millisecond,
			Seed: 7,
		},
		Journal: j, Reg: reg,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}

	requests, handoffs := 0, 0
	for _, s := range res.Stats {
		requests += s.Requests
		handoffs += s.Handoffs
	}
	d := res.Deposet
	fmt.Printf("ran %d nodes over TCP with faults: %d CS entries, %d anti-token handoffs\n",
		n, requests, handoffs)
	fmt.Printf("captured trace: %d processes, %d states, %d messages\n",
		d.NumProcs(), d.NumStates(), len(d.Messages()))

	// The journal merged from every node must show one unforked
	// scapegoat chain, and every handoff response must have paid at
	// least two shimmed network hops.
	var rep obs.Report
	rep.CheckScapegoatChainNet(j)
	rep.CheckResponsesWindow(reg.Histogram("predctl_response_handoff_ns"),
		2*(2*time.Millisecond).Nanoseconds(), (60 * time.Second).Nanoseconds(), j)
	if err := rep.Err(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
	fmt.Printf("invariants ok: %d checked\n", len(rep.Checked))

	// B = ∨ᵢ ¬csᵢ over the application processes (0..n-1). The online
	// controller enforced it live; the offline detector confirms no
	// consistent cut of the captured run violates it.
	spec := trace.DisjunctionSpec{}
	for i := 0; i < n; i++ {
		spec.Locals = append(spec.Locals, trace.LocalSpec{P: i, Var: "cs", Op: "eq", Value: 0})
	}
	dj, err := spec.Compile(d.NumProcs())
	if err != nil {
		log.Fatalf("predicate: %v", err)
	}
	if cut, bad := detect.PossiblyConjunctive(d, dj.Negate()); bad {
		log.Fatalf("captured run violates B at %v", cut)
	}
	fmt.Println("offline check: no consistent cut has every process in its critical section")

	// The capture is an ordinary pctl trace: replay it on the simulator
	// under fresh random delays and verify B again.
	rr, err := replay.Run(d, nil, replay.Config{Seed: 3, Delay: sim.UniformDelay(1, 5)})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	if cut, ok := replay.VerifyDisjunction(rr, d, dj); !ok {
		log.Fatalf("replay violates B at %v", cut)
	}
	fmt.Println("replayed on the simulator: every consistent cut satisfies B")
}
