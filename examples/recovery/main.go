// Recovery demonstrates the paper's §8 remark that off-line predicate
// control applies "wherever control is required when the computation is
// known a priori, such as in distributed recovery": after a failure, the
// logged computation is re-executed under a controller that keeps the
// system out of the state that caused the crash (controlled
// re-execution).
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"predctl"
)

const nodes = 3

func main() {
	// Phase 1: the original (logged) run. A sloppy leader-election lets
	// several nodes act as leader at once; the invariant "at most one
	// leader" is what the post-mortem will blame.
	k := predctl.NewSim(predctl.SimConfig{Procs: nodes, Seed: 31, Trace: true,
		Delay: predctl.UniformDelay(2, 12)})
	bodies := make([]func(*predctl.Proc), nodes)
	for i := range bodies {
		bodies[i] = func(p *predctl.Proc) {
			p.Init("leader", 0)
			for term := 0; term < 3; term++ {
				p.Work(predctl.Time(3 + p.Rand().Intn(20)))
				p.Set("leader", 1) // claims leadership without consensus
				// "Replicate" an entry to the next node while leading.
				p.Send((p.ID()+1)%nodes, term)
				p.Work(predctl.Time(5 + p.Rand().Intn(10)))
				p.Set("leader", 0)
			}
			for r := 0; r < 3; r++ {
				p.Recv()
			}
		}
	}
	tr, err := k.Run(bodies...)
	if err != nil {
		log.Fatal(err)
	}
	d := tr.D
	fmt.Printf("logged run: %d states, %d messages\n", d.NumStates(), len(d.Messages()))

	// Phase 2: post-mortem. The crash invariant: at most one leader —
	// as a controllable predicate, "some node is NOT leader" must hold
	// for every pair... for n nodes the single-leader property per pair;
	// here the classic disjunctive form covers the total outage case and
	// pairwise clauses the rest. We use the pairwise clause between each
	// adjacent pair via the CNF extension through the facade's Control on
	// the strongest single-disjunction form: "at most n-1 leaders" plus
	// the pair that actually collided.
	notLeader := func(p int) predctl.LocalFn {
		return func(dd *predctl.Computation, k int) bool {
			v, ok := dd.Var(predctl.StateID{P: p, K: k}, "leader")
			return !ok || v == 0
		}
	}
	// Find the colliding pair in the log.
	var collided [2]int
	found := false
	for i := 0; i < nodes && !found; i++ {
		for j := i + 1; j < nodes && !found; j++ {
			pair := predctl.NewConjunction(nodes)
			pair.Add(i, "leader", leaderAt(i))
			pair.Add(j, "leader", leaderAt(j))
			if cut, ok := predctl.Possibly(d, pair); ok {
				collided = [2]int{i, j}
				found = true
				fmt.Printf("post-mortem: nodes %d and %d could lead simultaneously (e.g. at %v)\n",
					i, j, cut)
			}
		}
	}
	if !found {
		fmt.Println("this log happens to be collision-free; rerun with another seed")
		return
	}

	// Phase 3: synthesize the recovery controller for that pair and
	// re-execute the logged computation under it.
	B := predctl.NewDisjunction(nodes)
	B.Add(collided[0], "¬leader", notLeader(collided[0]))
	B.Add(collided[1], "¬leader", notLeader(collided[1]))
	res, err := predctl.Control(d, B)
	if err != nil {
		log.Fatalf("control: %v", err)
	}
	fmt.Printf("recovery controller: %d control message(s)\n", len(res.Relation))

	rr, err := predctl.Replay(d, res.Relation, predctl.ReplayConfig{
		Seed:  99,
		Delay: predctl.UniformDelay(2, 12),
	})
	if err != nil {
		log.Fatalf("controlled re-execution: %v", err)
	}
	if cut, ok := predctl.VerifyReplay(rr, d, B); !ok {
		log.Fatalf("re-execution still collides at %v", cut)
	}
	fmt.Println("controlled re-execution verified: the leadership collision cannot recur;")
	fmt.Println("the system recovers past the failure with the same application events.")
}

func leaderAt(p int) predctl.LocalFn {
	return func(dd *predctl.Computation, k int) bool {
		v, ok := dd.Var(predctl.StateID{P: p, K: k}, "leader")
		return ok && v == 1
	}
}
