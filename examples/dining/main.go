// Dining runs the paper's fourth example predicate — "at least one
// philosopher is thinking" — through the full live cycle: first an
// uncontrolled run with an on-line detector (Garg–Waldecker checker)
// that catches the violation as it happens, then the same workload under
// the on-line scapegoat (anti-token) controller, which makes the
// violation impossible with two control messages per handoff.
//
//	go run ./examples/dining
package main

import (
	"fmt"
	"log"

	"predctl"
)

const (
	philosophers = 5
	meals        = 4
)

func main() {
	// Phase 1: uncontrolled run with the on-line detector. Every
	// philosopher's local predicate is "I am eating"; the checker fires
	// when all five eating periods can overlap.
	probeApps := make([]func(*predctl.Probe), philosophers)
	for i := range probeApps {
		probeApps[i] = func(pr *predctl.Probe) {
			p := pr.P()
			p.Init("thinking", 1)
			for m := 0; m < meals; m++ {
				p.Work(predctl.Time(5 + p.Rand().Intn(20)))
				p.Set("thinking", 0) // starts eating, no coordination
				pr.SetLocal(true)    // "eating" holds
				p.Work(predctl.Time(30 + p.Rand().Intn(20)))
				p.Set("thinking", 1)
				pr.SetLocal(false)
			}
		}
	}
	_, det, err := predctl.MonitorRun(predctl.SimConfig{Seed: 4, Trace: true}, probeApps)
	if err != nil {
		log.Fatal(err)
	}
	if det.Found {
		fmt.Println("uncontrolled run: on-line detector fired — all philosophers")
		fmt.Println("eating at once is possible (nobody would notice the burning kitchen).")
	} else {
		fmt.Println("uncontrolled run: this seed dodged the bug; rerun with more appetite")
	}

	// Phase 2: the same appetite under on-line predicate control with
	// B = thinking₁ ∨ … ∨ thinkingₙ.
	apps := make([]func(*predctl.Guard), philosophers)
	for i := range apps {
		apps[i] = func(g *predctl.Guard) {
			p := g.P()
			p.Init("thinking", 1)
			for m := 0; m < meals; m++ {
				p.Work(predctl.Time(5 + p.Rand().Intn(40))) // think
				g.RequestFalse()                            // may I stop thinking?
				p.Set("thinking", 0)
				p.Work(predctl.Time(10 + p.Rand().Intn(20))) // eat
				p.Set("thinking", 1)
				g.NowTrue()
			}
		}
	}
	tr, stats, err := predctl.OnlineRun(predctl.OnlineConfig{
		N:     philosophers,
		Delay: 3,
		Seed:  4,
		Trace: true,
	}, apps)
	if err != nil {
		log.Fatal(err)
	}

	// Verify on the trace: no consistent global state has every
	// philosopher eating.
	allEating := predctl.NewConjunction(tr.D.NumProcs())
	for p := 0; p < philosophers; p++ {
		p := p
		allEating.Add(p, "eating", func(d *predctl.Computation, k int) bool {
			v, ok := d.Var(predctl.StateID{P: p, K: k}, "thinking")
			return ok && v == 0
		})
	}
	if cut, bad := predctl.Possibly(tr.D, allEating); bad {
		log.Fatalf("all philosophers eating at %v", cut)
	}

	fmt.Printf("\ncontrolled run: %d philosophers ate %d meals each; someone was always thinking.\n",
		philosophers, meals)
	fmt.Printf("meals: %d, scapegoat handoffs: %d, control messages: %d (2 per handoff)\n",
		stats.Requests, stats.Handoffs, stats.CtlMessages)
	fmt.Printf("handoff latency: mean %.1f, max %d (bounded by 2T+Emax)\n",
		stats.MeanResponse(), stats.MaxResponse())
}
