// Quickstart: the observe → detect → control → replay cycle in a dozen
// calls against the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"predctl"
)

func main() {
	// Observe: a traced computation of two servers, each with an
	// availability gap. (In practice this would come from a traced run —
	// see examples/mutex — or a JSON trace file.)
	b := predctl.NewBuilder(2)
	b.Let(0, "avail", 1)
	b.Let(1, "avail", 1)
	b.Step(0)
	b.Let(0, "avail", 0) // server 0 down
	b.Step(0)
	b.Let(0, "avail", 1)
	b.Step(1)
	b.Let(1, "avail", 0) // server 1 down
	b.Step(1)
	b.Let(1, "avail", 1)
	d := b.MustBuild()

	// Specify: B = "at least one server available".
	B := predctl.NewDisjunction(2)
	for p := 0; p < 2; p++ {
		p := p
		B.Add(p, "avail", func(dd *predctl.Computation, k int) bool {
			v, ok := dd.Var(predctl.StateID{P: p, K: k}, "avail")
			return ok && v == 1
		})
	}

	// Detect: is the bug ¬B possible? (Garg–Waldecker detection.)
	if cut, ok := predctl.Possibly(d, B.Negate()); ok {
		fmt.Printf("bug detected: no server available is possible, e.g. at cut %v\n", cut)
	} else {
		fmt.Println("trace already satisfies B everywhere")
		return
	}

	// Control: synthesize the control messages that make every replay
	// satisfy B.
	res, err := predctl.Control(d, B)
	if err != nil {
		log.Fatalf("control: %v", err)
	}
	fmt.Printf("controller: %d control message(s)\n", len(res.Relation))
	for _, e := range res.Relation {
		fmt.Printf("  block %v until %v is passed\n", e.To, e.From)
	}

	// Replay: re-execute under the controller (random delays) and verify.
	rr, err := predctl.Replay(d, res.Relation, predctl.ReplayConfig{Seed: 42})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	if cut, ok := predctl.VerifyReplay(rr, d, B); !ok {
		log.Fatalf("verification failed at %v", cut)
	}
	fmt.Println("controlled replay verified: every consistent global state satisfies B")
}
