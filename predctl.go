// Package predctl is a Go implementation of predicate control for active
// debugging of distributed programs, after Tarafdar & Garg (IPPS 1998).
//
// Distributed debugging is traditionally a cycle of passive observation
// and replay. Predicate control makes the cycle active: observe a
// computation, specify a global safety property B, synthesize extra
// causal dependencies (control messages with blocking receives) that
// make every replay of the computation satisfy B, and run new executions
// under an on-line controller that maintains B as they unfold.
//
// The package exposes:
//
//   - The computation model: deposets (Computation), built directly
//     (NewBuilder), generated, decoded from JSON traces, or captured from
//     the bundled deterministic simulator (sim aliases).
//   - Global predicates: boolean combinations of local predicates, with
//     the disjunctive class B = l1 ∨ … ∨ ln recognized specially.
//   - Detection: Possibly / Definitely for conjunctive predicates and
//     the (NP-complete) satisfying-global-sequence search SGSD.
//   - Off-line control: Control for disjunctive predicates (polynomial),
//     ControlGeneral for arbitrary predicates (exponential, provably so).
//   - Controlled replay: Replay re-executes a trace with the control
//     messages enforced, under arbitrary message delays.
//   - On-line control: OnlineRun maintains a disjunctive predicate over
//     a live (simulated) system via the scapegoat/anti-token protocol,
//     solving (n−1)-mutual exclusion as a special case.
//
// See DESIGN.md for the mapping to the paper and EXPERIMENTS.md for the
// reproduced evaluation.
package predctl

import (
	"io"

	"predctl/internal/control"
	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/monitor"
	"predctl/internal/offline"
	"predctl/internal/online"
	"predctl/internal/predicate"
	"predctl/internal/reduce"
	"predctl/internal/replay"
	"predctl/internal/sim"
	"predctl/internal/snapshot"
	"predctl/internal/trace"
)

// Model types.
type (
	// Computation is a traced distributed computation (a deposet).
	Computation = deposet.Deposet
	// Builder assembles a Computation event by event.
	Builder = deposet.Builder
	// StateID names a local state (process, index).
	StateID = deposet.StateID
	// Cut is a global state: one local state index per process.
	Cut = deposet.Cut
	// Interval is a maximal false-interval of a local predicate.
	Interval = deposet.Interval
	// Sequence is a global sequence of consistent cuts from ⊥ to ⊤.
	Sequence = deposet.Sequence
)

// NewBuilder starts a computation of n processes.
func NewBuilder(n int) *Builder { return deposet.NewBuilder(n) }

// Predicate types.
type (
	// Predicate is a global predicate over global states.
	Predicate = predicate.Expr
	// Disjunction is a predicate in the controllable form l1 ∨ … ∨ ln.
	Disjunction = predicate.Disjunction
	// Conjunction is a predicate in the detectable form q1 ∧ … ∧ qn.
	Conjunction = predicate.Conjunction
	// LocalFn is the truth of a local predicate at a state index.
	LocalFn = predicate.LocalFn
)

// Predicate constructors (see the predicate package for more).
var (
	And   = predicate.And
	Or    = predicate.Or
	Not   = predicate.Not
	Local = predicate.Local
	Const = predicate.Const
)

// NewDisjunction starts an empty disjunctive predicate over n processes.
func NewDisjunction(n int) *Disjunction { return predicate.NewDisjunction(n) }

// NewConjunction starts an empty conjunctive predicate over n processes.
func NewConjunction(n int) *Conjunction { return predicate.NewConjunction(n) }

// Control types.
type (
	// ControlEdge is one forced-before tuple u ⟶C v.
	ControlEdge = control.Edge
	// ControlRelation is a set of forced-before tuples.
	ControlRelation = control.Relation
	// Controlled is a computation extended with a control relation.
	Controlled = control.Extended
	// ControlResult carries a synthesized relation plus diagnostics.
	ControlResult = offline.Result
)

// ErrInfeasible reports that no control strategy can enforce the
// predicate on the computation.
var ErrInfeasible = offline.ErrInfeasible

// ErrInterference reports a control relation that would deadlock.
var ErrInterference = control.ErrInterference

// Control solves off-line predicate control for a disjunctive predicate:
// the efficient algorithm at the heart of the paper. See
// offline.Control.
func Control(d *Computation, b *Disjunction) (*ControlResult, error) {
	return offline.Control(d, b, offline.Options{})
}

// ControlGeneral solves off-line control for an arbitrary predicate by
// exhaustive search (the problem is NP-hard in general).
func ControlGeneral(d *Computation, b Predicate) (ControlRelation, Sequence, error) {
	return offline.ControlGeneral(d, b)
}

// Extend validates a control relation against a computation and returns
// the controlled computation with extended causality.
func Extend(d *Computation, rel ControlRelation) (*Controlled, error) {
	return control.Extend(d, rel)
}

// Detection.

// Possibly reports whether some consistent global state satisfies the
// conjunction, with a witness cut (Garg–Waldecker weak conjunctive
// detection; polynomial).
func Possibly(d *Computation, q *Conjunction) (Cut, bool) {
	return detect.PossiblyConjunctive(d, q)
}

// Definitely reports whether every interleaving passes through a state
// satisfying the conjunction, with a witness overlapping interval set
// (strong conjunctive detection; polynomial).
func Definitely(d *Computation, q *Conjunction) ([]Interval, bool) {
	return detect.DefinitelyConjunctive(d, q)
}

// Violations lists every consistent global state violating b
// (exponential; for small computations under study). Computations above
// the parallel-engine cutoff are enumerated level-synchronously across
// GOMAXPROCS workers, in deterministic (depth, lexicographic) order;
// smaller ones keep the sequential lattice walk.
func Violations(d *Computation, b Predicate) []Cut {
	return detect.AllViolationsPar(d, b, detect.Par{})
}

// SGSD searches for a global sequence satisfying b at every state
// (NP-complete; exponential). simultaneous selects the paper's
// simultaneous-advance semantics; false restricts to interleavings,
// which is the controller-relevant notion.
func SGSD(d *Computation, b Predicate, simultaneous bool) (Sequence, bool) {
	return detect.SGSD(d, b, simultaneous)
}

// Replay.

// ReplayConfig parameterizes a controlled replay.
type ReplayConfig = replay.Config

// ReplayResult is a completed controlled replay.
type ReplayResult = replay.Result

// Replay re-executes d on the simulator with rel enforced as control
// messages.
func Replay(d *Computation, rel ControlRelation, cfg ReplayConfig) (*ReplayResult, error) {
	return replay.Run(d, rel, cfg)
}

// VerifyReplay checks a replay against a disjunctive predicate,
// returning the violating cut if any.
func VerifyReplay(res *ReplayResult, d *Computation, b *Disjunction) (Cut, bool) {
	return replay.VerifyDisjunction(res, d, b)
}

// TraceReport summarizes optimal tracing for replay (Netzer–Miller):
// which receive bindings race and must be recorded.
type TraceReport = reduce.Report

// AnalyzeRaces computes the racing receives of a computation.
func AnalyzeRaces(d *Computation) *TraceReport { return reduce.Analyze(d) }

// Simulation and on-line control.
type (
	// SimConfig configures the deterministic simulator.
	SimConfig = sim.Config
	// SimKernel drives one simulated execution.
	SimKernel = sim.Kernel
	// Proc is a simulated process handle.
	Proc = sim.Proc
	// SimTrace is a traced simulated execution.
	SimTrace = sim.Trace
	// Time is virtual time.
	Time = sim.Time
	// OnlineConfig configures an on-line controlled system.
	OnlineConfig = online.Config
	// OnlineStats aggregates on-line control overhead.
	OnlineStats = online.Stats
	// Guard is the application-side handle to an on-line controller.
	Guard = online.Guard
)

// NewSim creates a simulator kernel.
func NewSim(cfg SimConfig) *SimKernel { return sim.New(cfg) }

// Delay helpers for SimConfig.
var (
	ConstantDelay = sim.ConstantDelay
	UniformDelay  = sim.UniformDelay
)

// On-line observation (the detect side of the live cycle).
type (
	// Probe carries a runtime vector clock and reports local-predicate
	// intervals to the monitor's checker process.
	Probe = monitor.Probe
	// Detection is the monitor checker's verdict.
	Detection = monitor.Detection
)

// MonitorRun executes application bodies with an on-line
// weak-conjunctive-predicate checker (Garg–Waldecker) attached as an
// extra process.
func MonitorRun(cfg SimConfig, apps []func(*Probe)) (*SimTrace, *Detection, error) {
	return monitor.Run(cfg, apps)
}

// Distributed snapshots (Chandy–Lamport; requires SimConfig.FIFO).
type (
	// SnapshotNode wraps a simulated process with snapshot participation.
	SnapshotNode = snapshot.Node
	// SnapshotCollector accumulates one snapshot's records.
	SnapshotCollector = snapshot.Collector
)

// NewSnapshotCollector returns an empty snapshot collector.
func NewSnapshotCollector() *SnapshotCollector { return snapshot.NewCollector() }

// NewSnapshotNode wraps p for snapshot participation.
func NewSnapshotNode(p *Proc, c *SnapshotCollector, state func() any) *SnapshotNode {
	return snapshot.NewNode(p, c, state)
}

// OnlineRun executes application bodies under on-line predicate control
// (the scapegoat strategy of the paper's Figure 3).
func OnlineRun(cfg OnlineConfig, apps []func(*Guard)) (*SimTrace, *OnlineStats, error) {
	return online.Run(cfg, apps)
}

// Trace I/O.

// EncodeTrace writes a computation (and optional control relation) as
// JSON.
func EncodeTrace(w io.Writer, d *Computation, rel ControlRelation) error {
	return trace.Encode(w, d, rel)
}

// DecodeTrace reads a computation and control relation from JSON.
func DecodeTrace(r io.Reader) (*Computation, ControlRelation, error) {
	return trace.Decode(r)
}
