package predctl

// Benchmarks mirroring the experiment harness (cmd/pcbench, DESIGN.md's
// E1..E8 index) as testing.B targets, plus micro-benchmarks for the
// substrates. Custom metrics surface the paper's own units (control
// messages per entry, explored cuts) alongside ns/op.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"predctl/internal/deposet"
	"predctl/internal/detect"
	"predctl/internal/kmutex"
	"predctl/internal/monitor"
	"predctl/internal/offline"
	"predctl/internal/predicate"
	"predctl/internal/reduce"
	"predctl/internal/replay"
	"predctl/internal/sat"
	"predctl/internal/scenario"
	"predctl/internal/sim"
	"predctl/internal/snapshot"
	"predctl/internal/vclock"
)

// --- E1: SGSD on SAT reductions (NP-hardness, Figure 1) ---

func BenchmarkE1SGSDReduction(b *testing.B) {
	for _, m := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(m)))
			f := sat.RandomKSAT(r, m, int(4.3*float64(m)), 3)
			red, err := sat.Reduce(f)
			if err != nil {
				b.Fatal(err)
			}
			var explored int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := detect.SGSDWithStats(red.D, red.B, false)
				if err != nil {
					b.Fatal(err)
				}
				explored = stats.NodesExplored
			}
			b.ReportMetric(float64(explored), "cuts")
		})
	}
}

// --- E2: off-line disjunctive control scaling ---

func e2Workload(n, p int) (*deposet.Deposet, *predicate.Disjunction) {
	bld := deposet.NewBuilder(n)
	states := 1 + 4*p
	for q := 0; q < n; q++ {
		for e := 1; e < states; e++ {
			bld.Step(q)
		}
	}
	d := bld.MustBuild()
	truth := make([][]bool, n)
	for q := 0; q < n; q++ {
		truth[q] = make([]bool, states)
		for k := 0; k < states; k++ {
			truth[q][k] = k == 0 || (k-1)%4 >= 2
		}
	}
	return d, predicate.DisjunctionFromTruth(truth)
}

func benchOffline(b *testing.B, run func(*deposet.Deposet, *predicate.Disjunction) (*offline.Result, error)) {
	for _, n := range []int{2, 8, 32} {
		for _, p := range []int{8, 32} {
			b.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(b *testing.B) {
				d, dj := e2Workload(n, p)
				var edges int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := run(d, dj)
					if err != nil {
						b.Fatal(err)
					}
					edges = len(res.Relation)
				}
				b.ReportMetric(float64(edges), "edges")
			})
		}
	}
}

func BenchmarkE2OfflineChain(b *testing.B) {
	b.ReportAllocs()
	benchOffline(b, func(d *deposet.Deposet, dj *predicate.Disjunction) (*offline.Result, error) {
		return offline.Control(d, dj, offline.Options{})
	})
}

func BenchmarkE2OfflineFigure2(b *testing.B) {
	benchOffline(b, func(d *deposet.Deposet, dj *predicate.Disjunction) (*offline.Result, error) {
		return offline.ControlFigure2(d, dj, offline.Options{})
	})
}

func BenchmarkE2OfflineFigure2Naive(b *testing.B) {
	benchOffline(b, func(d *deposet.Deposet, dj *predicate.Disjunction) (*offline.Result, error) {
		return offline.ControlFigure2(d, dj, offline.Options{Naive: true})
	})
}

// --- E3: two-process mutual exclusion message complexity ---

func BenchmarkE3Mutex(b *testing.B) {
	for _, p := range []int{16, 128} {
		b.Run(fmt.Sprintf("cs=%d", p), func(b *testing.B) {
			d, dj := e2Workload(2, p)
			var perCS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := offline.Control(d, dj, offline.Options{})
				if err != nil {
					b.Fatal(err)
				}
				perCS = float64(len(res.Relation)) / float64(2*p)
			}
			b.ReportMetric(perCS, "msgs/cs")
		})
	}
}

// --- E4/E5: on-line control overhead ---

func benchOnline(b *testing.B, broadcast bool) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := kmutex.Workload{
				N: n, Rounds: 20, ThinkMax: 200, CS: 20, Delay: 5, Seed: 11,
			}
			var msgsPerEntry float64
			var maxResp sim.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, m, err := kmutex.RunScapegoat(w, broadcast)
				if err != nil {
					b.Fatal(err)
				}
				msgsPerEntry = m.MessagesPerEntry()
				maxResp = m.MaxResponse()
			}
			b.ReportMetric(msgsPerEntry, "msgs/entry")
			b.ReportMetric(float64(maxResp), "max-resp")
		})
	}
}

func BenchmarkE4OnlineAntiToken(b *testing.B) { benchOnline(b, false) }
func BenchmarkE5OnlineBroadcast(b *testing.B) { benchOnline(b, true) }

// --- E6: k-mutex baselines ---

func benchKMutex(b *testing.B, run func(kmutex.Workload) (*sim.Trace, *kmutex.Metrics, error)) {
	w := kmutex.Workload{N: 8, Rounds: 20, ThinkMax: 200, CS: 20, Delay: 5, Seed: 11}
	var msgsPerEntry float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := run(w)
		if err != nil {
			b.Fatal(err)
		}
		msgsPerEntry = m.MessagesPerEntry()
	}
	b.ReportMetric(msgsPerEntry, "msgs/entry")
}

func BenchmarkE6KMutexCentral(b *testing.B) { benchKMutex(b, kmutex.RunCentral) }
func BenchmarkE6KMutexToken(b *testing.B)   { benchKMutex(b, kmutex.RunToken) }
func BenchmarkE6KMutexAntiToken(b *testing.B) {
	benchKMutex(b, func(w kmutex.Workload) (*sim.Trace, *kmutex.Metrics, error) {
		return kmutex.RunScapegoat(w, false)
	})
}

// --- E7: the Figure 4 debugging cycle end to end ---

func BenchmarkE7Figure4Cycle(b *testing.B) {
	fg, err := scenario.New()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d := fg.C1
		if _, ok := detect.PossiblyConjunctive(d, fg.Bug1On(nil)); !ok {
			b.Fatal("bug1 not detected")
		}
		res1, err := offline.Control(d, fg.Avail, offline.Options{})
		if err != nil {
			b.Fatal(err)
		}
		c2, err := replay.Run(d, res1.Relation, replay.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := detect.PossiblyTruth(c2.Trace.D, func(p, k int) bool {
			return fg.Bug2On(c2.Underlying).Holds(c2.Trace.D, p, k)
		}); !ok {
			b.Fatal("bug2 not detected in C2")
		}
		res4, err := offline.Control(d, fg.EBeforeF, offline.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := replay.Run(d, res4.Relation, replay.Config{Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: CNF (locally independent) control ---

func BenchmarkE8ControlCNF(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	d := deposet.Random(r, deposet.DefaultGen(6, 48))
	truth := deposet.RandomTruth(r, d, 0.25)
	var clauses []*predicate.Disjunction
	for c := 0; c < 4; c++ {
		i, j := c%3, 3+c%3
		dj := predicate.NewDisjunction(6)
		ti, tj := truth[i], truth[j]
		dj.Add(i, "¬cs", func(_ *deposet.Deposet, k int) bool { return !ti[k] })
		dj.Add(j, "¬cs", func(_ *deposet.Deposet, k int) bool { return !tj[k] })
		clauses = append(clauses, dj)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := offline.ControlCNF(d, clauses, offline.Options{})
		if err != nil && !errors.Is(err, offline.ErrInfeasible) &&
			!errors.Is(err, offline.ErrNotIndependent) {
			b.Fatal(err)
		}
	}
}

// --- E10: parallel detection/control engine ---
//
// Worker counts resolve from GOMAXPROCS, so `go test -bench E10 -cpu 1,4`
// produces the sequential and 4-worker variants of every target; the
// committed BENCH_baseline.json records the same sweep via
// `pcbench -baseline` (see internal/expt/e10.go).

func BenchmarkE10BuildParallel(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(10))
	bld := deposet.RandomBuilder(r, deposet.DefaultGen(32, 16000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.BuildParallel(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10PossiblyPar(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(10))
	d := deposet.Random(r, deposet.DefaultGen(32, 16000))
	truth := deposet.RandomTruth(r, d, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.PossiblyTruthPar(d, func(p, k int) bool { return truth[p][k] }, detect.Par{})
	}
}

func BenchmarkE10DefinitelyPar(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(10))
	d := deposet.Random(r, deposet.DefaultGen(32, 16000))
	truth := deposet.RandomTruth(r, d, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.DefinitelyTruthPar(d, func(p, k int) bool { return truth[p][k] }, detect.Par{})
	}
}

func BenchmarkE10ViolationsPar(b *testing.B) {
	b.ReportAllocs()
	// Small lattice (33³ cuts); Cutoff 1 so the level-synchronous search
	// still shards at whatever GOMAXPROCS the -cpu flag sets. Pinned to
	// the exhaustive engine: AllViolationsPar itself now dispatches
	// disjunctive queries to the slice (benchmarked below).
	d, dj := e2Workload(3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.AllViolationsExhaustivePar(d, dj, detect.Par{Cutoff: 1})
	}
}

func BenchmarkE10ViolationsSliced(b *testing.B) {
	b.ReportAllocs()
	// Same workload through the dispatcher: ¬(∨ lp) is regular, so the
	// violations come from the computation slice instead of the lattice
	// walk — the states-explored gap is the whole point (BENCH_slice.json).
	d, dj := e2Workload(3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.AllViolationsPar(d, dj, detect.Par{Cutoff: 1})
	}
}

func BenchmarkE10DetectBatch(b *testing.B) {
	ds, qs, _ := batchWorkload(10, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectBatch(ds, qs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ControlBatch(b *testing.B) {
	ds, _, bs := batchWorkload(10, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ControlBatch(ds, bs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkVClockMerge(b *testing.B) {
	b.ReportAllocs()
	v := vclock.New(64)
	w := vclock.New(64)
	for i := range w {
		w[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Merge(w)
	}
}

func BenchmarkDeposetBuild(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		deposet.Random(r, deposet.DefaultGen(8, 400))
	}
}

func BenchmarkDeposetHB(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(3))
	d := deposet.Random(r, deposet.DefaultGen(8, 800))
	s := deposet.StateID{P: 0, K: d.Len(0) / 2}
	t := deposet.StateID{P: 7, K: d.Len(7) - 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.HB(s, t)
	}
}

func BenchmarkDetectPossibly(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(5))
	d := deposet.Random(r, deposet.DefaultGen(16, 3200))
	truth := deposet.RandomTruth(r, d, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.PossiblyTruth(d, func(p, k int) bool { return truth[p][k] })
	}
}

func BenchmarkDetectDefinitely(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(5))
	d := deposet.Random(r, deposet.DefaultGen(16, 3200))
	truth := deposet.RandomTruth(r, d, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.DefinitelyTruth(d, func(p, k int) bool { return truth[p][k] })
	}
}

func BenchmarkSimThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New(sim.Config{Procs: 8, Seed: int64(i)})
		bodies := make([]func(*sim.Proc), 8)
		for j := range bodies {
			bodies[j] = func(p *sim.Proc) {
				for step := 0; step < 50; step++ {
					p.Send((p.ID()+1)%p.N(), step)
					p.Recv()
				}
			}
		}
		if _, err := k.Run(bodies...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	d := deposet.Random(r, deposet.DefaultGen(6, 300))
	dj := predicate.DisjunctionFromTruth(deposet.RandomTruth(r, d, 0.8))
	res, err := offline.Control(d, dj, offline.Options{})
	if err != nil {
		b.Skip("instance infeasible; adjust seed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(d, res.Relation, replay.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		col := snapshot.NewCollector()
		k := sim.New(sim.Config{Procs: 6, FIFO: true, Seed: int64(i), Delay: sim.UniformDelay(1, 6)})
		bodies := make([]func(*sim.Proc), 6)
		for j := range bodies {
			j := j
			bodies[j] = func(p *sim.Proc) {
				node := snapshot.NewNode(p, col, func() any { return j })
				if j == 0 {
					node.Initiate()
				}
				for round := 0; round < 10; round++ {
					node.Send((j+1)%6, round)
					if _, _, ok := node.TryRecv(); !ok {
						p.Work(2)
					}
				}
				for {
					if _, _, ok := node.RecvOrDone(); !ok {
						break
					}
				}
			}
		}
		if _, err := k.Run(bodies...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorDetection(b *testing.B) {
	apps := make([]func(*monitor.Probe), 6)
	for i := range apps {
		apps[i] = func(pr *monitor.Probe) {
			p := pr.P()
			for r := 0; r < 20; r++ {
				p.Work(sim.Time(1 + p.Rand().Intn(5)))
				pr.SetLocal(r%2 == 0)
				pr.Step()
			}
			pr.SetLocal(true)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := monitor.Run(sim.Config{Seed: int64(i)}, apps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceAnalyze(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	d := deposet.Random(r, deposet.DefaultGen(8, 2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduce.Analyze(d)
	}
}
