package predctl

import (
	"bytes"
	"errors"
	"testing"
)

// TestQuickstartFlow exercises the whole public API surface the way the
// README's quickstart does: build, detect, control, verify, replay.
func TestQuickstartFlow(t *testing.T) {
	// Two servers, each with an unavailability window.
	b := NewBuilder(2)
	b.Let(0, "avail", 1)
	b.Let(1, "avail", 1)
	b.Step(0)
	b.Let(0, "avail", 0)
	b.Step(0)
	b.Let(0, "avail", 1)
	b.Step(1)
	b.Let(1, "avail", 0)
	b.Step(1)
	b.Let(1, "avail", 1)
	d := b.MustBuild()

	avail := func(p int) LocalFn {
		return func(dd *Computation, k int) bool {
			v, ok := dd.Var(StateID{P: p, K: k}, "avail")
			return ok && v == 1
		}
	}
	B := NewDisjunction(2)
	B.Add(0, "avail", avail(0))
	B.Add(1, "avail", avail(1))

	// The bug "no server available" is possible...
	bug := B.Negate()
	cut, possible := Possibly(d, bug)
	if !possible {
		t.Fatal("expected the bug to be possible")
	}
	if !d.Consistent(cut) {
		t.Fatal("witness inconsistent")
	}
	// ...but not inevitable, so a controller exists.
	if _, definitely := Definitely(d, bug); definitely {
		t.Fatal("bug should not be inevitable here")
	}
	res, err := Control(d, B)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Extend(d, res.Relation)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Consistent(d.BottomCut()) {
		t.Fatal("⊥ must stay consistent")
	}
	// Replay the controlled computation and verify.
	rr, err := Replay(d, res.Relation, ReplayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vcut, ok := VerifyReplay(rr, d, B); !ok {
		t.Fatalf("controlled replay violates B at %v", vcut)
	}
	// Round-trip through the trace format.
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, d, res.Relation); err != nil {
		t.Fatal(err)
	}
	d2, rel2, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumStates() != d.NumStates() || len(rel2) != len(res.Relation) {
		t.Fatal("trace round trip mismatch")
	}
}

func TestPredicateCombinators(t *testing.T) {
	b := NewBuilder(1)
	b.Step(0)
	d := b.MustBuild()
	after := Local(0, "after1", func(_ *Computation, k int) bool { return k >= 1 })
	e := Or(And(after, Const(true)), Not(Const(true)))
	if e.Eval(d, Cut{0}) || !e.Eval(d, Cut{1}) {
		t.Fatal("combinators wrong")
	}
	if v := Violations(d, after); len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if _, ok := SGSD(d, Const(true), false); !ok {
		t.Fatal("SGSD trivial failed")
	}
}

func TestInfeasibleSurfaceError(t *testing.T) {
	b := NewBuilder(1)
	b.Step(0)
	d := b.MustBuild()
	B := NewDisjunction(1) // constant false: trivially infeasible
	_, err := Control(d, B)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ControlGeneral(d, Const(false)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("general err = %v", err)
	}
}

func TestOnlineFacade(t *testing.T) {
	apps := make([]func(*Guard), 2)
	for i := range apps {
		apps[i] = func(g *Guard) {
			p := g.P()
			p.Init("cs", 0)
			for r := 0; r < 3; r++ {
				p.Work(Time(5))
				g.RequestFalse()
				p.Set("cs", 1)
				p.Work(Time(3))
				p.Set("cs", 0)
				g.NowTrue()
			}
		}
	}
	tr, stats, err := OnlineRun(OnlineConfig{N: 2, Delay: 2, Trace: true}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 6 {
		t.Fatalf("requests = %d", stats.Requests)
	}
	inCS := NewConjunction(tr.D.NumProcs())
	for p := 0; p < 2; p++ {
		p := p
		inCS.Add(p, "cs", func(dd *Computation, k int) bool {
			v, ok := dd.Var(StateID{P: p, K: k}, "cs")
			return ok && v == 1
		})
	}
	if cut, bad := Possibly(tr.D, inCS); bad {
		t.Fatalf("mutual exclusion violated at %v", cut)
	}
}

func TestSimFacade(t *testing.T) {
	k := NewSim(SimConfig{Procs: 2, Trace: true})
	tr, err := k.Run(
		func(p *Proc) { p.Send(1, "x") },
		func(p *Proc) { p.Recv() },
	)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Messages != 1 {
		t.Fatal("stats wrong")
	}
}

func TestMonitorFacade(t *testing.T) {
	apps := []func(*Probe){
		func(pr *Probe) {
			pr.P().Init("q", 1)
			pr.SetLocal(true)
			pr.P().Work(5)
		},
		func(pr *Probe) {
			pr.P().Init("q", 1)
			pr.SetLocal(true)
			pr.P().Work(5)
		},
	}
	_, det, err := MonitorRun(SimConfig{Seed: 3}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Found {
		t.Fatal("overlap not detected")
	}
}

func TestSnapshotFacade(t *testing.T) {
	col := NewSnapshotCollector()
	k := NewSim(SimConfig{Procs: 2, FIFO: true, Trace: true, Delay: ConstantDelay(3)})
	mk := func(init bool) func(*Proc) {
		return func(p *Proc) {
			x := 10
			n := NewSnapshotNode(p, col, func() any { return x })
			if init && p.ID() == 0 {
				n.Initiate()
			}
			for {
				_, _, ok := n.RecvOrDone()
				if !ok {
					break
				}
			}
		}
	}
	if _, err := k.Run(mk(true), mk(false)); err != nil {
		t.Fatal(err)
	}
	if len(col.Records) != 2 {
		t.Fatalf("records = %d", len(col.Records))
	}
}

func TestAnalyzeRacesFacade(t *testing.T) {
	b := NewBuilder(3)
	_, h0 := b.Send(0)
	_, h1 := b.Send(1)
	b.Recv(2, h0)
	b.Recv(2, h1)
	rep := AnalyzeRaces(b.MustBuild())
	if rep.Receives != 2 || len(rep.Races) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
